module Plan = Lepts_preempt.Plan
module Sub = Lepts_preempt.Sub_instance
module Model = Lepts_power.Model
module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set
module Vec = Lepts_linalg.Vec
module Projection = Lepts_optim.Projection
module Pg = Lepts_optim.Projected_gradient
module Numdiff = Lepts_optim.Numdiff
module Pool = Lepts_par.Pool
module Metrics = Lepts_obs.Metrics
module Telemetry = Lepts_obs.Telemetry
module Span = Lepts_obs.Span

type error = Unschedulable | Solver_stalled of string

(* Kernel selection for the structure-exploiting solve path (DESIGN.md
   §12). Both modes run the same algorithm — scaled coordinates, the
   same projections mathematically, the same adaptive inner budget —
   and differ only in kernel implementation, so they produce
   bit-identical iterates: [Exact] is the dense reference (sort-based
   projection via [Float.compare], full forward/adjoint sweeps, dense
   penalty and multiplier loops), [Fast] substitutes the structure
   kernels (flat block projection with raw-compare sort, incremental
   dirty-prefix forward sweeps, cached penalty prefix sums,
   active-segment-pruned penalty/multiplier/adjoint loops). *)
type structure = Exact | Fast

type stats = {
  objective : float;
  max_violation : float;
  outer_iterations : int;
  inner_iterations : int;
}

let pp_error ppf = function
  | Unschedulable -> Format.fprintf ppf "task set not schedulable at maximum speed"
  | Solver_stalled msg -> Format.fprintf ppf "NLP solver stalled: %s" msg

let log_src = Logs.Src.create "lepts.core.solver" ~doc:"voltage scheduling NLP"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Wall clock for the solve budget. [Sys.time] is per-process CPU time,
   which runs [jobs] times faster than the wall during a parallel
   multi-start and so starved parallel solves of their budget. *)
let now () = Unix.gettimeofday ()

(* Built-in instrumentation (DESIGN.md §9). Registered in the default
   registry at module load so every run report carries these series,
   zero-valued when nothing solved. Counter bumps and histogram
   observations are atomic adds — strictly observational, no effect on
   the solver's float operations. *)
let m_solves =
  Metrics.counter ~help:"multi-start solves attempted" Metrics.default
    "lepts_solver_solves_total"

let m_starts =
  Metrics.counter ~help:"solver start points run" Metrics.default
    "lepts_solver_starts_total"

let m_start_failures =
  Metrics.counter ~help:"solver start points that failed" Metrics.default
    "lepts_solver_start_failures_total"

let h_solve_seconds =
  Metrics.histogram ~help:"wall-clock seconds per multi-start solve"
    ~buckets:[| 0.001; 0.01; 0.1; 1.; 10.; 100. |]
    Metrics.default "lepts_solver_solve_seconds"

(* Worst-case rate-monotonic execution at maximum speed: process the
   total order with a running cursor, filling each sub-instance with as
   much of its instance's remaining WCEC as fits before its boundary.
   This is simultaneously the canonical feasible point of the NLP and a
   schedulability check. *)
let initial_point ~(plan : Plan.t) ~power =
  let m = Array.length plan.Plan.order in
  let ts = plan.Plan.task_set in
  let remaining =
    Array.mapi
      (fun i per_instance ->
        let task = Task_set.task ts i in
        Array.map (fun _ -> task.Task.wcec) per_instance)
      plan.Plan.instance_subs
  in
  let e0 = Array.make m 0. and q0 = Array.make m 0. in
  let cursor = ref 0. in
  let feasible = ref true in
  for k = 0 to m - 1 do
    let sub = plan.Plan.order.(k) in
    let start = Float.max sub.Sub.release !cursor in
    let avail = Float.max 0. (sub.Sub.boundary -. start) in
    let rem = remaining.(sub.Sub.task).(sub.Sub.instance) in
    let need = Model.min_duration power ~cycles:(Float.max rem 1e-300) in
    let time = if rem <= 0. then 0. else Float.min avail need in
    let quota = if need <= 0. then 0. else rem *. time /. need in
    q0.(k) <- quota;
    e0.(k) <- start +. time;
    remaining.(sub.Sub.task).(sub.Sub.instance) <- rem -. quota;
    cursor := e0.(k)
  done;
  Array.iter
    (Array.iter (fun rem -> if rem > 1e-9 then feasible := false))
    remaining;
  if !feasible then Ok (e0, q0) else Error Unschedulable

let t_at_vmax power =
  (* Time per megacycle at maximum speed; valid for both delay models. *)
  Model.cycle_time power ~v:power.Model.v_max

(* --- Slack parametrisation -------------------------------------------- *)

(* The inner NLP runs in {e scaled} coordinates z = [u; s] with
   u_k = t_max * q_k: every coordinate of z is then a duration, the
   frontier recursion becomes an unweighted prefix chain
   (e_k = start_k + u_k + s_k, g_k = u_k + s_k - room_k), and the
   per-instance simplex constraints scale to [sum u = t_max * WCEC]
   (uniform scaling of a simplex, so projecting u is the projection of
   q). Conditioning in these coordinates is dramatically better — the
   quota and slack directions have commensurate curvature — which both
   finds lower-energy local optima and makes short inner budgets safe
   (see DESIGN.md §12). The forward sweep and its adjoint run over the
   preallocated buffers of a {!Workspace.t}; [ws.q] is kept in
   unscaled quota units ([z_k / t_max]) because the runtime objective
   and [repair] consume quotas. *)

(* Same-module float copy of [Float.max] (same formula as the stdlib,
   so same results): without flambda the cross-module call boxes its
   arguments and result, and the forward sweep runs it 3m times per
   objective evaluation. *)
let[@inline] fmax (x : float) (y : float) =
  if y > x || (x <> x && not (y <> y)) then y else x

(* Recompute the frontier recursion over [lo, m) given the frontier
   value entering index [lo]: fills [ws.q] (unscaled quotas), [ws.e],
   [ws.start], [ws.start_ff], [ws.room] and [ws.g] on that range. *)
let forward_scaled_range (ws : Workspace.t) ~t_max (z : Vec.t) lo frontier0 =
  let m = ws.Workspace.m in
  let plan = ws.Workspace.plan in
  let q = ws.Workspace.q in
  let e = ws.Workspace.e and start = ws.Workspace.start in
  let start_ff = ws.Workspace.start_ff in
  let room = ws.Workspace.room and g = ws.Workspace.g in
  let frontier = ref frontier0 in
  for k = lo to m - 1 do
    let sub = plan.Plan.order.(k) in
    let from_frontier = !frontier >= sub.Sub.release in
    let st = if from_frontier then !frontier else sub.Sub.release in
    let uk = fmax 0. z.(k) and sk = fmax 0. z.(m + k) in
    q.(k) <- z.(k) /. t_max;
    start.(k) <- st;
    start_ff.(k) <- from_frontier;
    room.(k) <- fmax 0. (sub.Sub.boundary -. st);
    g.(k) <- uk +. sk -. room.(k);
    e.(k) <- st +. uk +. sk;
    frontier := e.(k)
  done

(* Full forward sweep (the Exact reference). *)
let forward_scaled (ws : Workspace.t) ~t_max (z : Vec.t) =
  forward_scaled_range ws ~t_max z 0 0.

(* Incremental forward sweep: the recursion is a prefix chain, so when
   [z] agrees with the point of the previous sweep ([ws.y_prev]) on a
   prefix — per index, both the u and the s coordinate — the derived
   state of that prefix is already in the workspace and only the
   suffix from the first dirty index needs recomputing, seeded with
   the frontier [ws.e.(d - 1)]. Returns the first recomputed index
   ([m] when the sweep was a full memo hit — notably every gradient
   evaluation, which {!Lepts_optim.Projected_gradient} performs at the
   point of the objective call just before it). Equality is by float
   value: NaN never occurs in iterates (guarded), and [y_prev] starts
   as NaN so the first sweep after workspace creation is always full.
   Bit-identical to {!forward_scaled} because the recomputed suffix
   performs exactly the operations the full sweep would, on state the
   full sweep would have produced. *)
let forward_scaled_incr (ws : Workspace.t) ~t_max (z : Vec.t) =
  let m = ws.Workspace.m in
  let yp = ws.Workspace.y_prev in
  if not ws.Workspace.fwd_valid then begin
    forward_scaled_range ws ~t_max z 0 0.;
    Array.blit z 0 yp 0 (2 * m);
    ws.Workspace.fwd_valid <- true;
    0
  end
  else begin
    let d = ref 0 in
    while !d < m && z.(!d) = yp.(!d) && z.(m + !d) = yp.(m + !d) do
      incr d
    done;
    let d = !d in
    if d < m then begin
      forward_scaled_range ws ~t_max z d
        (if d = 0 then 0. else ws.Workspace.e.(d - 1));
      Array.blit z d yp d (m - d);
      Array.blit z (m + d) yp (m + d) (m - d)
    end;
    d
  end

(* Adjoint of the frontier recursion: given dE/de_k (from the runtime
   objective) and dP/dg_k (from the penalty terms), accumulate
   gradients with respect to u and s in one backward sweep over the
   branches recorded by the forward sweep. [hi] truncates the sweep to
   the last index with a nonzero sensitivity (pass [m - 1] for the
   dense reference): above it every term is zero and the additions are
   bitwise no-ops — the accumulators are never [-0.] (they are built
   by [+.] chains from [+0.], which cannot produce [-0.] from finite
   summands of mixed sign) and the frontier adjoint entering [hi] is
   exactly [+0.], the value the dense sweep computes. *)
let backward_scaled (ws : Workspace.t) ~hi ~de ~dg ~into_du ~into_ds =
  let room = ws.Workspace.room and start_ff = ws.Workspace.start_ff in
  let psi = ref 0. in
  (* psi is the adjoint of the frontier F_k flowing from later
     sub-instances. *)
  for k = hi downto 0 do
    let total = de.(k) +. !psi in
    (* e_k = start_k + u_k + s_k ; g_k = u_k + s_k - room_k *)
    into_du.(k) <- into_du.(k) +. total +. dg.(k);
    into_ds.(k) <- into_ds.(k) +. total +. dg.(k);
    (* start_k adjoint: from e_k (weight 1) and from room_k
       (room = b - start when positive, so dg/dstart = +dg). *)
    let dstart = total +. (if room.(k) > 0. then dg.(k) else 0.) in
    psi := if start_ff.(k) then dstart else 0.
  done

(* In-place projection of packed [y]: each instance's quota slice onto
   its [sum = WCEC] simplex, slacks clamped into [0, hyper]. The slices
   partition the quota prefix, so projecting in place is equivalent to
   the copy-out form; the exact-length gather / sort buffers per
   instance are allocated once and reused by every call. *)
let make_projection_ip (plan : Plan.t) ~hyper =
  let m = Array.length plan.Plan.order in
  let ts = plan.Plan.task_set in
  let subs = plan.Plan.instance_subs in
  let buffers =
    Array.map
      (Array.map (fun idxs ->
           (Array.make (Array.length idxs) 0., Array.make (Array.length idxs) 0.)))
      subs
  in
  fun (y : Vec.t) ->
    for i = 0 to Array.length subs - 1 do
      let wcec = (Task_set.task ts i).Task.wcec in
      let per = subs.(i) in
      for j = 0 to Array.length per - 1 do
        let idxs = per.(j) in
        let buf, scratch = buffers.(i).(j) in
        let n = Array.length idxs in
        for pos = 0 to n - 1 do
          buf.(pos) <- y.(idxs.(pos))
        done;
        Projection.simplex_ip ~total:wcec ~scratch buf;
        for pos = 0 to n - 1 do
          y.(idxs.(pos)) <- buf.(pos)
        done
      done
    done;
    for k = m to (2 * m) - 1 do
      y.(k) <- Lepts_util.Num_ext.clamp ~lo:0. ~hi:hyper y.(k)
    done

(* Scaled-coordinate projection: each instance's u-slice onto its
   [sum = t_max * WCEC] simplex, slacks clamped into [0, hyper].
   [Exact] walks the nested instance map with exact-length buffers and
   the [Float.compare] sort ({!Projection.simplex_ip}) — the bit-
   identity reference. [Fast] drives {!Projection.simplex_fast_ip}
   from the workspace's flat block index with two shared max-length
   buffers, inlining singleton blocks (most blocks, on realistic
   plans). The two produce bit-identical output: same threshold
   arithmetic over the same descending value sequence (see
   {!Projection.simplex_fast_ip}), and the singleton inline is the
   one-element threshold unfolded. *)
let make_projection_scaled (ws : Workspace.t) ~t_max ~hyper ~structure =
  let plan = ws.Workspace.plan in
  let m = ws.Workspace.m in
  let ts = plan.Plan.task_set in
  match structure with
  | Exact ->
    let subs = plan.Plan.instance_subs in
    let buffers =
      Array.map
        (Array.map (fun idxs ->
             (Array.make (Array.length idxs) 0., Array.make (Array.length idxs) 0.)))
        subs
    in
    fun (z : Vec.t) ->
      for i = 0 to Array.length subs - 1 do
        let total = t_max *. (Task_set.task ts i).Task.wcec in
        let per = subs.(i) in
        for j = 0 to Array.length per - 1 do
          let idxs = per.(j) in
          let buf, scratch = buffers.(i).(j) in
          let n = Array.length idxs in
          for pos = 0 to n - 1 do
            buf.(pos) <- z.(idxs.(pos))
          done;
          Projection.simplex_ip ~total ~scratch buf;
          for pos = 0 to n - 1 do
            z.(idxs.(pos)) <- buf.(pos)
          done
        done
      done;
      for k = m to (2 * m) - 1 do
        z.(k) <- Lepts_util.Num_ext.clamp ~lo:0. ~hi:hyper z.(k)
      done
  | Fast ->
    let n_blocks = ws.Workspace.n_blocks in
    let off = ws.Workspace.blk_off and idx = ws.Workspace.blk_idx in
    let buf = ws.Workspace.blk_buf and scratch = ws.Workspace.blk_scratch in
    let totals =
      Array.init n_blocks (fun b ->
          t_max *. (Task_set.task ts ws.Workspace.blk_task.(b)).Task.wcec)
    in
    fun (z : Vec.t) ->
      for b = 0 to n_blocks - 1 do
        let lo = off.(b) in
        let n = off.(b + 1) - lo in
        let total = totals.(b) in
        if n = 1 then begin
          let k = idx.(lo) in
          let v = z.(k) in
          z.(k) <- fmax 0. (v -. (v -. total))
        end
        else begin
          for pos = 0 to n - 1 do
            buf.(pos) <- z.(idx.(lo + pos))
          done;
          Projection.simplex_fast_ip ~total ~scratch ~n buf;
          for pos = 0 to n - 1 do
            z.(idx.(lo + pos)) <- buf.(pos)
          done
        end
      done;
      for k = m to (2 * m) - 1 do
        z.(k) <- Lepts_util.Num_ext.clamp ~lo:0. ~hi:hyper z.(k)
      done

(* Final feasibility repair: walk the total order once, capping each
   quota to what fits before its boundary at maximum speed (moving any
   overflow to the instance's next sub-instance) and lifting end-times
   just enough to fit the worst case. The solver converges to within
   the augmented-Lagrangian tolerance, so this moves the solution only
   microscopically — but it makes worst-case feasibility exact. *)
let repair ~(plan : Plan.t) ~power ~e ~q =
  let m = Array.length plan.Plan.order in
  let t_max = t_at_vmax power in
  let e = Array.copy e and q = Array.copy q in
  let next = plan.Plan.next_in_instance in
  let cursor = ref 0. in
  let ok = ref true in
  for k = 0 to m - 1 do
    let sub = plan.Plan.order.(k) in
    q.(k) <- Float.max 0. q.(k);
    let start = Float.max sub.Sub.release !cursor in
    let cap = Float.max 0. ((sub.Sub.boundary -. start) /. t_max) in
    if q.(k) > cap then begin
      let overflow = q.(k) -. cap in
      q.(k) <- cap;
      let k' = next.(k) in
      if k' >= 0 then q.(k') <- q.(k') +. overflow
      else begin
        (* No later segment to absorb it. Residuals far below the
           validation tolerance are solver noise and are dropped; the
           runtime executor caps actual work at the quota sum anyway. *)
        let wcec = (Task_set.task plan.Plan.task_set sub.Sub.task).Task.wcec in
        if overflow > 1e-6 *. wcec then ok := false
      end
    end;
    let min_end = start +. (t_max *. q.(k)) in
    e.(k) <- Float.min sub.Sub.boundary (Float.max e.(k) min_end);
    (* The cursor (worst-case busy frontier) never regresses: a
       zero-quota sub-instance whose segment ended before the frontier
       gets a vacuous end-time but must not relax its successors. *)
    cursor := Float.max !cursor e.(k)
  done;
  if !ok then Ok (e, q) else Error (Solver_stalled "repair could not place all workload")

(* Latest-feasible ("as late as possible") end-times for given quotas:
   push every end-time right until it hits its segment boundary or the
   worst-case fit of its successor. This is the structure the paper's
   insight points at ("extend the end time of each task to as long as
   that allowed by the worst-case execution scenario") and a valuable
   second starting point for the non-convex NLP. *)
let alap_end_times (plan : Plan.t) ~t_max ~e ~q =
  let m = Array.length plan.Plan.order in
  let out = Array.copy e in
  if m > 0 then begin
    out.(m - 1) <- plan.Plan.order.(m - 1).Sub.boundary;
    for k = m - 2 downto 0 do
      let b = plan.Plan.order.(k).Sub.boundary in
      out.(k) <- Float.max e.(k) (Float.min b (out.(k + 1) -. (t_max *. q.(k + 1))))
    done
  end;
  out

(* Slack vector realising given end-times under the frontier
   recursion. *)
let slacks_for (plan : Plan.t) ~t_max ~e ~q =
  let m = Array.length plan.Plan.order in
  let s = Array.make m 0. in
  let frontier = ref 0. in
  for k = 0 to m - 1 do
    let start = Float.max plan.Plan.order.(k).Sub.release !frontier in
    s.(k) <- Float.max 0. (e.(k) -. start -. (t_max *. q.(k)));
    frontier := start +. (t_max *. q.(k)) +. s.(k)
  done;
  s

(* --- Augmented Lagrangian over the slack parametrisation --------------- *)

(* [totals_list] holds one or more workload scenarios; the objective is
   their mean runtime energy (a single ACEC or WCEC scenario for the
   deterministic modes, a Monte-Carlo sample for the stochastic
   extension). *)
let solve_from ?deadline ?telemetry ?(structure = Fast) ~max_outer ~max_inner
    ~totals_list ~(plan : Plan.t) ~power ~y0 () =
    let m = Array.length plan.Plan.order in
    let t_max = t_at_vmax power in
    let hyper = Plan.hyper_period plan in
    let scenario_count = float_of_int (List.length totals_list) in
    let ws = Workspace.create plan in
    let fast = structure = Fast in
    (* The accumulation closures below are built once per solve and
       capture only the workspace, so the hot path — [lag] and
       [lag_grad_into], called once per inner iteration — allocates
       nothing. The left-to-right scenario accumulation order matches
       the allocating reference path bit for bit. *)
    let acc = Array.make 1 0. in
    let add_energy totals =
      acc.(0) <- acc.(0) +. Objective.eval_ws ws ~power ~totals ~e:ws.Workspace.e
                              ~w_hat:ws.Workspace.q
    in
    (* Mean runtime energy at the forward state currently in [ws]. *)
    let mean_energy_ws () =
      acc.(0) <- 0.;
      List.iter add_energy totals_list;
      acc.(0) /. scenario_count
    in
    let add_gradient totals =
      let (_ : float) =
        Objective.eval_with_gradient_ws ws ~power ~totals ~e:ws.Workspace.e
          ~w_hat:ws.Workspace.q ~de:ws.Workspace.de_i ~dwq:ws.Workspace.dq_i
      in
      for k = 0 to m - 1 do
        ws.Workspace.de.(k) <- ws.Workspace.de.(k) +. (ws.Workspace.de_i.(k) /. scenario_count);
        ws.Workspace.dq.(k) <- ws.Workspace.dq.(k) +. (ws.Workspace.dq_i.(k) /. scenario_count)
      done
    in
    (* Forward sweep dispatch: the Fast path goes through the
       dirty-prefix bookkeeping and reports the first recomputed index
       (consumed by the penalty prefix cache below); the Exact path
       always sweeps fully and never touches the incremental state. *)
    let forward z =
      if fast then forward_scaled_incr ws ~t_max z
      else begin
        forward_scaled ws ~t_max z;
        0
      end
    in
    let energy_of z =
      let (_ : int) = forward z in
      mean_energy_ws ()
    in
    let analytic = match power.Model.delay with
      | Model.Ideal _ -> true
      | Model.Alpha _ -> false
    in
    let lambda = Array.make m 0. in
    let mu = ref 10. in
    (* Enter scaled coordinates: z = [t_max * q; s]. *)
    let x =
      ref
        (Array.init (2 * m) (fun k ->
             if k < m then t_max *. y0.(k) else y0.(k)))
    in
    let project_ip = make_projection_scaled ws ~t_max ~hyper ~structure in
    let inner_total = ref 0 in
    let outer = ref 0 in
    let violation = ref infinity in
    let finished = ref false in
    let within_deadline () =
      match deadline with None -> true | Some d -> now () < d
    in
    (* Iteration-granular wall budget for the inner descent. The clock
       is consulted every 32nd poll (an inner iteration costs tens of
       microseconds even on huge instances, so expiry is detected well
       under 10 ms late) and the expired state latches. Read-only with
       respect to the descent: under a generous budget the iterates
       are bit-identical to an unbudgeted run. *)
    let should_stop =
      Option.map
        (fun d ->
          let calls = ref 0 and expired = ref false in
          fun () ->
            if (not !expired) && !calls land 31 = 0 then expired := now () >= d;
            incr calls;
            !expired)
        deadline
    in
    let ring =
      match telemetry with
      | None -> None
      | Some (slot : Telemetry.start) -> Some slot.Telemetry.s_ring
    in
    while (not !finished) && !outer < max_outer && within_deadline () do
      incr outer;
      Option.iter (fun r -> Telemetry.set_phase r !outer) ring;
      (* The multipliers and penalty weight changed: cached penalty
         prefix sums are stale. *)
      ws.Workspace.pen_valid <- false;
      let mu_now = !mu in
      let lag z =
        let d = forward z in
        let energy = mean_energy_ws () in
        let g = ws.Workspace.g in
        if fast then begin
          (* Penalty via cached ascending prefix sums: terms over the
             clean prefix [0, pstart) were accumulated by a previous
             evaluation at identical (g, lambda, mu), so resuming the
             accumulator from [pen_prefix.(pstart)] reproduces the
             dense left-to-right sum bit for bit. Inactive segments
             (zero multiplier, satisfied constraint) contribute
             [-. 0.], a bitwise no-op on any accumulator value, so
             the active-set branch skips them entirely. *)
          let pp = ws.Workspace.pen_prefix in
          let pstart = if ws.Workspace.pen_valid then d else 0 in
          let penalty = ref (if pstart = 0 then 0. else pp.(pstart)) in
          for k = pstart to m - 1 do
            if lambda.(k) > 0. || g.(k) > 0. then begin
              let t = lambda.(k) +. (mu_now *. g.(k)) in
              if t > 0. then
                penalty :=
                  !penalty
                  +. (((t *. t) -. (lambda.(k) *. lambda.(k))) /. (2. *. mu_now))
              else penalty := !penalty -. (lambda.(k) *. lambda.(k) /. (2. *. mu_now))
            end;
            pp.(k + 1) <- !penalty
          done;
          ws.Workspace.pen_valid <- true;
          energy +. !penalty
        end
        else begin
          let penalty = ref 0. in
          for k = 0 to m - 1 do
            let t = lambda.(k) +. (mu_now *. g.(k)) in
            if t > 0. then
              penalty :=
                !penalty +. (((t *. t) -. (lambda.(k) *. lambda.(k))) /. (2. *. mu_now))
            else penalty := !penalty -. (lambda.(k) *. lambda.(k) /. (2. *. mu_now))
          done;
          energy +. !penalty
        end
      in
      let lag_grad_analytic_into z ~into =
        let (_ : int) = forward z in
        let de = ws.Workspace.de and dq = ws.Workspace.dq in
        let dg = ws.Workspace.dg and ds = ws.Workspace.ds in
        for k = 0 to m - 1 do
          de.(k) <- 0.;
          dq.(k) <- 0.;
          ds.(k) <- 0.
        done;
        (* Mean of the per-scenario objective adjoints. *)
        List.iter add_gradient totals_list;
        (* The objective differentiates in quota units; the chain rule
           into u divides by t_max (u = t_max * q). The accumulator is
           a [+.] chain from [+0.] so it is never [-0.], and neither
           is the quotient. *)
        for k = 0 to m - 1 do
          dq.(k) <- dq.(k) /. t_max
        done;
        let g = ws.Workspace.g in
        if fast then
          (* Inactive segments have zero penalty slope; write the zero
             without computing the test value. Bit-identical: on such
             segments [t <= 0] forces the dense branch to write [0.]
             too. *)
          for k = 0 to m - 1 do
            if lambda.(k) > 0. || g.(k) > 0. then begin
              let t = lambda.(k) +. (mu_now *. g.(k)) in
              dg.(k) <- (if t > 0. then t else 0.)
            end
            else dg.(k) <- 0.
          done
        else
          for k = 0 to m - 1 do
            let t = lambda.(k) +. (mu_now *. g.(k)) in
            dg.(k) <- (if t > 0. then t else 0.)
          done;
        (* Truncate the adjoint sweep to the last nonzero sensitivity
           (Fast); the skipped suffix only adds exact zeros. *)
        let hi =
          if fast then begin
            let h = ref (m - 1) in
            while !h >= 0 && de.(!h) = 0. && dg.(!h) = 0. do
              decr h
            done;
            !h
          end
          else m - 1
        in
        backward_scaled ws ~hi ~de ~dg ~into_du:dq ~into_ds:ds;
        Array.blit dq 0 into 0 m;
        Array.blit ds 0 into m m
      in
      let grad_into =
        if analytic then lag_grad_analytic_into
        else fun z ~into -> Array.blit (Numdiff.gradient ~f:lag z) 0 into 0 (2 * m)
      in
      (* Adaptive inner budget. Basin selection happens in the first
         few rounds — they deserve a real descent — while later
         rounds only track the multiplier updates, which small fixed
         budgets follow within tolerance (validated against
         per-instance budget sweeps; see DESIGN.md §12). Identical
         for both structures, so it does not affect Exact/Fast
         parity. *)
      let inner_budget =
        if !outer <= 3 then min max_inner 300 else min max_inner 60
      in
      let r =
        Pg.minimize_ws ?telemetry:ring ?should_stop ~max_iter:inner_budget
          ~tol:1e-10 ~f:lag ~grad_into ~project_ip ~x0:!x ()
      in
      inner_total := !inner_total + r.Pg.iterations;
      x := r.Pg.x;
      let (_ : int) = forward !x in
      let g = ws.Workspace.g in
      let previous_violation = !violation in
      violation := 0.;
      (* The multiplier update is a no-op on inactive segments
         ([fmax 0.] of a non-positive value writes back the [+0.]
         already there), so Fast skips the arithmetic; the violation
         max must still scan every constraint. *)
      for k = 0 to m - 1 do
        violation := fmax !violation g.(k);
        if (not fast) || lambda.(k) > 0. || g.(k) > 0. then
          lambda.(k) <- fmax 0. (lambda.(k) +. (mu_now *. g.(k)))
      done;
      Log.debug (fun f ->
          f "outer %d: energy=%g violation=%g mu=%g inner=%d" !outer (energy_of !x)
            !violation mu_now r.Pg.iterations);
      if !violation <= 1e-9 *. hyper then finished := true
      else if !violation > 0.5 *. previous_violation then mu := !mu *. 5.
    done;
    (* Leave scaled coordinates: quotas are [z_k / t_max] (filled into
       [ws.q] by the forward sweep), but the end-times are re-derived
       with repair's own quota-unit products [t_max *. q_k] rather than
       taken from the scaled sweep — [t_max *. (u_k /. t_max)] can
       round one ulp above [u_k], and end-times computed from [u_k]
       would then sit below {!repair}'s minimum and be lifted by an
       ulp on every re-solve, breaking the repair-identity that warm
       continuation ({!solve_warm}) relies on for its seed-kept
       fixpoint. *)
    let z = !x in
    let (_ : int) = forward z in
    (let q = ws.Workspace.q and e = ws.Workspace.e in
     let frontier = ref 0. in
     for k = 0 to m - 1 do
       let sub = plan.Plan.order.(k) in
       let st = if !frontier >= sub.Sub.release then !frontier else sub.Sub.release in
       let qk = fmax 0. q.(k) and sk = fmax 0. z.(m + k) in
       e.(k) <- st +. (t_max *. qk) +. sk;
       frontier := e.(k)
     done;
     (* [ws.e] no longer describes [y_prev]. *)
     ws.Workspace.fwd_valid <- false);
    let result =
      match repair ~plan ~power ~e:ws.Workspace.e ~q:ws.Workspace.q with
      | Error _ as err -> err
      | Ok (e, q) ->
        let schedule = Static_schedule.create ~plan ~power ~end_times:e ~quotas:q in
        let stats =
          { objective =
              List.fold_left
                (fun acc totals ->
                  acc
                  +. Objective.eval ~plan ~power ~totals ~e:schedule.Static_schedule.end_times
                       ~w_hat:schedule.Static_schedule.quotas)
                0. totals_list
              /. scenario_count;
            max_violation = !violation;
            outer_iterations = !outer;
            inner_iterations = !inner_total }
        in
        Ok (schedule, stats)
    in
    (match telemetry with
    | None -> ()
    | Some (slot : Telemetry.start) ->
      slot.Telemetry.outer_rounds <- !outer;
      slot.Telemetry.inner_iterations <- !inner_total;
      (match result with
      | Ok (_, stats) -> slot.Telemetry.final_objective <- stats.objective
      | Error err -> slot.Telemetry.failure <- Some (Format.asprintf "%a" pp_error err)));
    result

(* The NLP is non-convex and piecewise smooth, so a single descent run
   can stall. Each solve therefore starts from several structurally
   distinct feasible points — the greedy (as-soon-as-possible)
   worst-case schedule, its ALAP push-right, and any caller-provided
   warm starts (e.g. the WCS solution when solving ACS) — and keeps the
   best result. The starts are independent, so [jobs > 1] runs them on
   a domain pool; each start owns its workspace, results come back
   indexed by start, and the reduction below scans them in start order
   with a strict-improvement test — so the pick is the same schedule
   for every [jobs] value. *)
let solve_multi_start ?wall_budget ?telemetry ?(jobs = 1) ?structure ~max_outer
    ~max_inner ~warm_starts ~totals_list ~(plan : Plan.t) ~power () =
  match initial_point ~plan ~power with
  | Error _ as err -> err
  | Ok (e0, q0) ->
    let m = Array.length plan.Plan.order in
    let t_max = t_at_vmax power in
    let t0 = now () in
    let deadline = Option.map (fun b -> t0 +. b) wall_budget in
    let point_of_eq (e, q) = Array.append q (slacks_for plan ~t_max ~e ~q) in
    let alap = alap_end_times plan ~t_max ~e:e0 ~q:q0 in
    let candidates =
      Array.of_list
        (Array.append q0 (Array.make m 0.)
         :: point_of_eq (alap, q0)
         :: List.map point_of_eq warm_starts)
    in
    let n_starts = Array.length candidates in
    Metrics.incr m_solves;
    Metrics.incr ~by:n_starts m_starts;
    Option.iter (fun s -> Telemetry.init_starts s ~n:n_starts) telemetry;
    (* Pool workers start with an empty span stack; capturing the
       caller's innermost span here and passing it as the explicit
       parent keeps span paths identical for every [jobs] value. *)
    let span_parent = match Span.current () with Some p -> p | None -> "" in
    let attempts, (_ : Pool.stats) =
      Pool.run ~jobs ~n:n_starts ~f:(fun start ->
          Span.with_ ~parent:span_parent ~name:"start" (fun () ->
              let telemetry =
                Option.map (fun s -> Telemetry.start_slot s start) telemetry
              in
              try
                solve_from ?deadline ?telemetry ?structure ~max_outer ~max_inner
                  ~totals_list ~plan ~power ~y0:candidates.(start) ()
              with Lepts_optim.Guard.Non_finite what ->
                Error
                  (Solver_stalled
                     (Printf.sprintf "non-finite evaluation (%s)" what))))
    in
    Metrics.observe h_solve_seconds (now () -. t0);
    let best = ref None in
    (* Keep the most recent failure: when every start fails, the final
       error must say why instead of a generic stall message. *)
    let last_error = ref None in
    Array.iteri
      (fun start attempt ->
        match attempt with
        | Error err ->
          Metrics.incr m_start_failures;
          Log.debug (fun f -> f "start %d failed: %a" start pp_error err);
          last_error := Some err
        | Ok (schedule, stats) -> (
          match !best with
          | Some (_, best_stats) when best_stats.objective <= stats.objective -> ()
          | _ -> best := Some (schedule, stats)))
      attempts;
    (match !best with
    | Some result -> Ok result
    | None ->
      let detail =
        match !last_error with
        | Some (Solver_stalled why) -> ": last failure: " ^ why
        | Some Unschedulable -> ": last failure: unschedulable"
        | None -> ""
      in
      Error
        (Solver_stalled ("no start point produced a feasible schedule" ^ detail)))

let solve ?wall_budget ?telemetry ?jobs ?structure ?(max_outer = 30)
    ?(max_inner = 2000) ?(warm_starts = []) ~mode ~(plan : Plan.t) ~power () =
  let span_name =
    match mode with
    | Objective.Average -> "solve:acs"
    | Objective.Worst -> "solve:wcs"
  in
  Span.with_ ~name:span_name (fun () ->
      let totals_list = [ Objective.instance_totals mode plan ] in
      solve_multi_start ?wall_budget ?telemetry ?jobs ?structure ~max_outer
        ~max_inner ~warm_starts ~totals_list ~plan ~power ())

let solve_stochastic ?telemetry ?jobs ?structure ?(max_outer = 30)
    ?(max_inner = 2000) ?(warm_starts = []) ?(scenarios = 16) ?(seed = 1)
    ~(plan : Plan.t) ~power () =
  if scenarios <= 0 then invalid_arg "Solver.solve_stochastic: scenarios";
  let rng = Lepts_prng.Xoshiro256.create ~seed in
  let sample () =
    Array.mapi
      (fun i per_instance ->
        let task = Task_set.task plan.Plan.task_set i in
        let sigma = Task.sigma task in
        Array.map
          (fun _ ->
            Lepts_prng.Dist.truncated_normal rng ~mu:task.Task.acec ~sigma
              ~lo:task.Task.bcec ~hi:task.Task.wcec)
          per_instance)
      plan.Plan.instance_subs
  in
  let totals_list = List.init scenarios (fun _ -> sample ()) in
  Span.with_ ~name:"solve:stochastic" (fun () ->
      solve_multi_start ?telemetry ?jobs ?structure ~max_outer ~max_inner
        ~warm_starts ~totals_list ~plan ~power ())

let solve_acs ?wall_budget ?telemetry ?jobs ?structure ?max_outer ?max_inner
    ?warm_starts ~plan ~power () =
  solve ?wall_budget ?telemetry ?jobs ?structure ?max_outer ?max_inner
    ?warm_starts ~mode:Objective.Average ~plan ~power ()

let solve_wcs ?wall_budget ?telemetry ?jobs ?structure ?max_outer ?max_inner
    ?warm_starts ~plan ~power () =
  solve ?wall_budget ?telemetry ?jobs ?structure ?max_outer ?max_inner
    ?warm_starts ~mode:Objective.Worst ~plan ~power ()

(* --- Warm-start continuation and incremental re-solve ------------------- *)

(* A previous solution can seed the current solve only when both plans
   put the same segment of the same instance at every order position
   with the same window — then quotas and end-times line up index by
   index. The windows are compared exactly: continuation across plans
   that merely {e look} similar would silently change which local
   optimum the descent lands in. *)
let structurally_compatible ~(plan : Plan.t) (prev : Static_schedule.t) =
  let prev_plan = prev.Static_schedule.plan in
  let m = Array.length plan.Plan.order in
  Array.length prev_plan.Plan.order = m
  &&
  let ok = ref true in
  for k = 0 to m - 1 do
    let a = plan.Plan.order.(k) and b = prev_plan.Plan.order.(k) in
    if
      a.Sub.task <> b.Sub.task
      || a.Sub.instance <> b.Sub.instance
      || a.Sub.release <> b.Sub.release
      || a.Sub.boundary <> b.Sub.boundary
    then ok := false
  done;
  !ok

(* Do the previous quotas still satisfy the current plan's per-instance
   [sum = WCEC] constraints? If so the previous solution is feasible
   as-is (it was repaired when produced) and can be kept verbatim; if
   not (e.g. the WCECs were rescaled) it must be re-projected first.
   The tolerance is {!repair}'s own drop threshold ([1e-6 * wcec]):
   repair discards last-segment overflow below it as solver noise, so
   the solver's own output can undershoot the sums by that much —
   demanding better here would force a spurious re-projection of every
   schedule the solver itself just produced (and with it, ulp drift on
   warm re-solves of converged instances). A genuine WCEC rescale
   differs at percent scale and is still caught. *)
let quota_sums_match ~(plan : Plan.t) (prev : Static_schedule.t) =
  let ts = plan.Plan.task_set in
  let q = prev.Static_schedule.quotas in
  let ok = ref true in
  Array.iteri
    (fun i per_instance ->
      let wcec = (Task_set.task ts i).Task.wcec in
      Array.iter
        (fun idxs ->
          let sum = Array.fold_left (fun acc k -> acc +. q.(k)) 0. idxs in
          if Float.abs (sum -. wcec) > 1e-6 *. Float.max 1. wcec then ok := false)
        per_instance)
    plan.Plan.instance_subs;
  !ok

(* One continuation descent seeded from [prev], reduced prev-first with
   a relative strict-improvement threshold: the continuation replaces
   the seed only when it is better by more than [improvement_rel]
   (relative to the seed's objective). Restarting the augmented
   Lagrangian from a converged point produces sub-tolerance drift
   (fresh multipliers, one more projection); the threshold keeps the
   seed in that case, so re-solving a converged instance returns it
   bit-identically and a warm solve is never worse than its seed. *)
let continue_from ?deadline ?telemetry ?structure ~max_outer ~max_inner
    ~improvement_rel ~totals_list ~(plan : Plan.t) ~power
    ~(prev : Static_schedule.t) () =
  let m = Array.length plan.Plan.order in
  let t_max = t_at_vmax power in
  let hyper = Plan.hyper_period plan in
  let scenario_count = float_of_int (List.length totals_list) in
  let mean_objective e q =
    List.fold_left
      (fun acc totals -> acc +. Objective.eval ~plan ~power ~totals ~e ~w_hat:q)
      0. totals_list
    /. scenario_count
  in
  let prev_e = prev.Static_schedule.end_times in
  let prev_q = prev.Static_schedule.quotas in
  (* Seed point: previous quotas re-projected onto the current
     per-instance simplexes, end-times clamped into the current
     windows, slacks re-derived to realise those end-times under the
     frontier recursion. *)
  let y0 = Array.append (Array.copy prev_q) (Array.make m 0.) in
  let project_ip = make_projection_ip plan ~hyper in
  project_ip y0;
  let e_seed =
    Array.mapi
      (fun k e ->
        let sub = plan.Plan.order.(k) in
        Lepts_util.Num_ext.clamp ~lo:sub.Sub.release ~hi:sub.Sub.boundary e)
      prev_e
  in
  let q_seed = Array.sub y0 0 m in
  Array.blit (slacks_for plan ~t_max ~e:e_seed ~q:q_seed) 0 y0 m m;
  (* Baseline candidate: the previous solution itself. When its quota
     sums still match the plan, [repair] is the identity on a repaired
     schedule, so keeping the baseline reproduces [prev] bit for bit;
     otherwise the re-projected seed stands in. [outer = inner = 0]
     marks "seed kept" in the returned stats. *)
  let baseline =
    let e_b, q_b =
      if quota_sums_match ~plan prev then (prev_e, prev_q) else (e_seed, q_seed)
    in
    match repair ~plan ~power ~e:e_b ~q:q_b with
    | Error _ as err -> err
    | Ok (e, q) ->
      let schedule = Static_schedule.create ~plan ~power ~end_times:e ~quotas:q in
      Ok
        ( schedule,
          { objective =
              mean_objective schedule.Static_schedule.end_times
                schedule.Static_schedule.quotas;
            max_violation = 0.; outer_iterations = 0; inner_iterations = 0 } )
  in
  let continued =
    try
      solve_from ?deadline ?telemetry ?structure ~max_outer ~max_inner
        ~totals_list ~plan ~power ~y0 ()
    with Lepts_optim.Guard.Non_finite what ->
      Error (Solver_stalled (Printf.sprintf "non-finite evaluation (%s)" what))
  in
  match (baseline, continued) with
  | Ok (_, bstats), Ok (_, cstats)
    when cstats.objective
         >= bstats.objective -. (improvement_rel *. Float.abs bstats.objective) ->
    baseline
  | _, Ok result -> Ok result
  | Ok _, Error _ -> baseline
  | (Error _ as err), Error _ -> err

let solve_warm ?wall_budget ?telemetry ?jobs ?structure ?(max_outer = 30)
    ?(max_inner = 2000) ?(improvement_rel = 1e-6) ~mode
    ~(prev : Static_schedule.t) ~(plan : Plan.t) ~power () =
  if not (structurally_compatible ~plan prev) then
    (* Nothing to continue from: full cold multi-start. *)
    solve ?wall_budget ?telemetry ?jobs ?structure ~max_outer ~max_inner ~mode
      ~plan ~power ()
  else
    Span.with_ ~name:"solve:warm" (fun () ->
        let totals_list = [ Objective.instance_totals mode plan ] in
        let t0 = now () in
        let deadline = Option.map (fun b -> t0 +. b) wall_budget in
        Metrics.incr m_solves;
        Metrics.incr m_starts;
        Option.iter (fun s -> Telemetry.init_starts s ~n:1) telemetry;
        let slot = Option.map (fun s -> Telemetry.start_slot s 0) telemetry in
        let result =
          continue_from ?deadline ?telemetry:slot ?structure ~max_outer
            ~max_inner ~improvement_rel ~totals_list ~plan ~power ~prev ()
        in
        Metrics.observe h_solve_seconds (now () -. t0);
        (match result with
        | Error _ -> Metrics.incr m_start_failures
        | Ok _ -> ());
        result)

let resolve_incremental ?wall_budget ?telemetry ?jobs ?structure ?max_outer
    ?max_inner ?improvement_rel ~mode ~(prev : Static_schedule.t)
    ~(plan : Plan.t) ~power () =
  if structurally_compatible ~plan prev then
    (* Only workloads (ACEC / WCEC values) changed: one continuation
       descent from the previous solution, never worse than the seed. *)
    solve_warm ?wall_budget ?telemetry ?jobs ?structure ?max_outer ?max_inner
      ?improvement_rel ~mode ~prev ~plan ~power ()
  else if
    Array.length prev.Static_schedule.end_times = Array.length plan.Plan.order
  then
    (* Same order length but shifted windows (e.g. one task's period or
       deadline changed): the previous point still carries information,
       so feed it to the multi-start as an extra warm start. *)
    solve ?wall_budget ?telemetry ?jobs ?structure ?max_outer ?max_inner
      ~warm_starts:
        [ (prev.Static_schedule.end_times, prev.Static_schedule.quotas) ]
      ~mode ~plan ~power ()
  else
    (* Structure changed (task added/removed): cold solve. *)
    solve ?wall_budget ?telemetry ?jobs ?structure ?max_outer ?max_inner ~mode
      ~plan ~power ()
