(** Average-workload distribution over sub-instances (paper Fig. 5 and
    eqns 11–14).

    A task instance preempted into sub-instances with worst-case quotas
    [q_1 .. q_K] executes an actual workload [total <= sum q_k] by
    filling the quotas {e in order}: "the next sub-instance will start
    execution only if the previous sub-instance already reached the
    worst-case limit". So sub-instance [k] executes

    [w_k = clamp (total - (q_1 + .. + q_{k-1})) 0 q_k].

    The same rule gives the ACEC split (the paper's case-1/case-2
    classification) and the runtime split for any sampled workload. *)

val distribute : quotas:float array -> total:float -> float array
(** [distribute ~quotas ~total] returns the per-sub-instance executed
    workloads. Requires [total >= 0.] and non-negative quotas; any
    workload beyond [sum quotas] is silently dropped (callers enforce
    [total <= sum quotas] — the WCEC bound — separately). *)

val distribute_into :
  quotas:float array ->
  n:int ->
  totals:float array ->
  j:int ->
  into:float array ->
  unit
(** Prefix variant of {!distribute} over preallocated buffers with
    [total = totals.(j)]: reads [quotas.(0..n-1)] and writes the split
    into [into.(0..n-1)] without allocating. The total arrives as an
    array element rather than a float argument so it is never boxed at
    the call (no cross-module float unboxing without flambda).
    Bit-identical to [distribute] on the prefix. *)

val partial_index : quotas:float array -> total:float -> int option
(** Index of the unique sub-instance that is only partially filled
    ([0 < w_k < q_k]), if any. *)

val backward :
  quotas:float array -> total:float -> adjoint:float array -> float array
(** [backward ~quotas ~total ~adjoint] is the vector-Jacobian product
    [J^T adjoint] where [J = d(distribute)/d(quotas)], using the
    one-sided derivative that treats boundary sub-instances as fully
    filled. Used by the ACS objective gradient. *)

val backward_into :
  quotas:float array ->
  adjoint:float array ->
  n:int ->
  totals:float array ->
  j:int ->
  into:float array ->
  unit
(** Prefix variant of {!backward} over preallocated buffers with
    [total = totals.(j)]: reads the first [n] quotas/adjoints and
    overwrites [into.(0..n-1)] with the vector-Jacobian product,
    without allocating ([totals]/[j] for the same boxing reason as
    {!distribute_into}). *)
