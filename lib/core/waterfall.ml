let check quotas total =
  if total < 0. then invalid_arg "Waterfall: negative total";
  Array.iter (fun q -> if q < 0. then invalid_arg "Waterfall: negative quota") quotas

let distribute ~quotas ~total =
  check quotas total;
  let remaining = ref total in
  Array.map
    (fun q ->
      let w = Float.min q !remaining in
      remaining := !remaining -. w;
      w)
    quotas

(* Same-module float copy of [Float.min] (same formula as the stdlib,
   so same results): the cross-module call boxes floats on every
   element without flambda. *)
let[@inline] fmin (x : float) (y : float) =
  if y < x || (x <> x && not (y <> y)) then y else x

(* Prefix variant over preallocated buffers: identical arithmetic to
   [distribute] on the first [n] elements, no allocation. The total is
   passed as [totals.(j)] rather than as a float argument because a
   float crossing a non-inlined call gets boxed — these two functions
   are the solver's innermost allocation-free kernels. *)
let distribute_into ~quotas ~n ~totals ~j ~into =
  let total = totals.(j) in
  if total < 0. then invalid_arg "Waterfall: negative total";
  if n > Array.length quotas || n > Array.length into then
    invalid_arg "Waterfall.distribute_into: prefix exceeds buffer";
  let remaining = ref total in
  for k = 0 to n - 1 do
    let q = quotas.(k) in
    if q < 0. then invalid_arg "Waterfall: negative quota";
    let w = fmin q !remaining in
    remaining := !remaining -. w;
    into.(k) <- w
  done

let partial_index ~quotas ~total =
  let dist = distribute ~quotas ~total in
  let rec find k =
    if k >= Array.length dist then None
    else if dist.(k) > 0. && dist.(k) < quotas.(k) then Some k
    else find (k + 1)
  in
  find 0

(* Derivative structure: sub-instances before the partial one satisfy
   w_k = q_k (dw_k/dq_k = 1); the partial one satisfies
   w_p = total - sum_{l<p} q_l (dw_p/dq_l = -1 for l < p); later ones
   are 0 with zero derivative. At kinks we take the fully-filled
   branch. *)
let backward_into ~quotas ~adjoint ~n ~totals ~j ~into =
  let total = totals.(j) in
  if total < 0. then invalid_arg "Waterfall: negative total";
  if n > Array.length quotas || n > Array.length adjoint || n > Array.length into
  then invalid_arg "Waterfall.backward_into: prefix exceeds buffer";
  for k = 0 to n - 1 do
    if quotas.(k) < 0. then invalid_arg "Waterfall: negative quota";
    into.(k) <- 0.
  done;
  let remaining = ref total in
  (try
     for k = 0 to n - 1 do
       let q = quotas.(k) in
       if !remaining >= q then begin
         (* fully filled: w_k = q_k *)
         into.(k) <- into.(k) +. adjoint.(k);
         remaining := !remaining -. q
       end
       else begin
         if !remaining > 0. then
           (* partial: w_k = total - sum of earlier quotas *)
           for l = 0 to k - 1 do
             into.(l) <- into.(l) -. adjoint.(k)
           done;
         raise Exit
       end
     done
   with Exit -> ())

let backward ~quotas ~total ~adjoint =
  check quotas total;
  if Array.length adjoint <> Array.length quotas then
    invalid_arg "Waterfall.backward: adjoint length mismatch";
  let out = Array.make (Array.length quotas) 0. in
  backward_into ~quotas ~adjoint ~n:(Array.length quotas) ~totals:[| total |]
    ~j:0 ~into:out;
  out
