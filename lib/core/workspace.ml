module Plan = Lepts_preempt.Plan

type t = {
  plan : Plan.t;
  m : int;
  (* objective kernels *)
  w_hat : float array;
  w : float array;
  dw : float array;
  (* adjoint step records, struct-of-arrays *)
  st_k : int array;
  st_d : float array;
  st_v : float array;
  st_w : float array;
  st_wq : float array;
  st_clamped : bool array;
  st_guarded : bool array;
  st_sff : bool array;
  mutable st_len : int;
  (* waterfall gather/scatter scratch *)
  wf_q : float array;
  wf_a : float array;
  wf_out : float array;
  (* solver frontier recursion and gradient accumulators *)
  q : float array;
  e : float array;
  start : float array;
  start_ff : bool array;
  room : float array;
  g : float array;
  de : float array;
  de_i : float array;
  dq_i : float array;
  dg : float array;
  dq : float array;
  ds : float array;
}

let max_segments (plan : Plan.t) =
  Array.fold_left
    (fun acc per ->
      Array.fold_left (fun acc idxs -> max acc (Array.length idxs)) acc per)
    1 plan.Plan.instance_subs

let create (plan : Plan.t) =
  let m = Array.length plan.Plan.order in
  let seg = max_segments plan in
  { plan; m;
    w_hat = Array.make m 0.;
    w = Array.make m 0.;
    dw = Array.make m 0.;
    st_k = Array.make m 0;
    st_d = Array.make m 0.;
    st_v = Array.make m 0.;
    st_w = Array.make m 0.;
    st_wq = Array.make m 0.;
    st_clamped = Array.make m false;
    st_guarded = Array.make m false;
    st_sff = Array.make m false;
    st_len = 0;
    wf_q = Array.make seg 0.;
    wf_a = Array.make seg 0.;
    wf_out = Array.make seg 0.;
    q = Array.make m 0.;
    e = Array.make m 0.;
    start = Array.make m 0.;
    start_ff = Array.make m false;
    room = Array.make m 0.;
    g = Array.make m 0.;
    de = Array.make m 0.;
    de_i = Array.make m 0.;
    dq_i = Array.make m 0.;
    dg = Array.make m 0.;
    dq = Array.make m 0.;
    ds = Array.make m 0. }

let plan t = t.plan
let size t = t.m
