module Plan = Lepts_preempt.Plan

type t = {
  plan : Plan.t;
  m : int;
  (* objective kernels *)
  w_hat : float array;
  w : float array;
  dw : float array;
  (* adjoint step records, struct-of-arrays *)
  st_k : int array;
  st_d : float array;
  st_v : float array;
  st_w : float array;
  st_wq : float array;
  st_clamped : bool array;
  st_guarded : bool array;
  st_sff : bool array;
  mutable st_len : int;
  (* waterfall gather/scatter scratch *)
  wf_q : float array;
  wf_a : float array;
  wf_out : float array;
  (* solver frontier recursion and gradient accumulators *)
  q : float array;
  e : float array;
  start : float array;
  start_ff : bool array;
  room : float array;
  g : float array;
  de : float array;
  de_i : float array;
  dq_i : float array;
  dg : float array;
  dq : float array;
  ds : float array;
  (* structure-exploiting fast path (DESIGN.md §12) *)
  n_blocks : int;
  blk_off : int array;
  blk_idx : int array;
  blk_task : int array;
  blk_buf : float array;
  blk_scratch : float array;
  y_prev : float array;
  pen_prefix : float array;
  mutable fwd_valid : bool;
  mutable pen_valid : bool;
}

let max_segments (plan : Plan.t) =
  Array.fold_left
    (fun acc per ->
      Array.fold_left (fun acc idxs -> max acc (Array.length idxs)) acc per)
    1 plan.Plan.instance_subs

(* Flatten the instance -> quota-range map into one index: block [b]
   covers the quota coordinates [blk_idx.[blk_off.(b), blk_off.(b+1))],
   all belonging to one instance of task [blk_task.(b)]. Blocks are
   enumerated in the same (task, instance) order the nested projection
   walks, so a flat loop over blocks visits coordinates in the same
   sequence. *)
let build_block_index (plan : Plan.t) m =
  let subs = plan.Plan.instance_subs in
  let n_blocks = Array.fold_left (fun acc per -> acc + Array.length per) 0 subs in
  let blk_off = Array.make (n_blocks + 1) 0 in
  let blk_idx = Array.make (max m 1) 0 in
  let blk_task = Array.make (max n_blocks 1) 0 in
  let b = ref 0 and pos = ref 0 in
  Array.iteri
    (fun i per ->
      Array.iter
        (fun idxs ->
          blk_task.(!b) <- i;
          blk_off.(!b) <- !pos;
          Array.iter
            (fun k ->
              blk_idx.(!pos) <- k;
              incr pos)
            idxs;
          incr b)
        per)
    subs;
  blk_off.(n_blocks) <- !pos;
  (n_blocks, blk_off, blk_idx, blk_task)

let create (plan : Plan.t) =
  let m = Array.length plan.Plan.order in
  let seg = max_segments plan in
  let n_blocks, blk_off, blk_idx, blk_task = build_block_index plan m in
  { plan; m;
    w_hat = Array.make m 0.;
    w = Array.make m 0.;
    dw = Array.make m 0.;
    st_k = Array.make m 0;
    st_d = Array.make m 0.;
    st_v = Array.make m 0.;
    st_w = Array.make m 0.;
    st_wq = Array.make m 0.;
    st_clamped = Array.make m false;
    st_guarded = Array.make m false;
    st_sff = Array.make m false;
    st_len = 0;
    wf_q = Array.make seg 0.;
    wf_a = Array.make seg 0.;
    wf_out = Array.make seg 0.;
    q = Array.make m 0.;
    e = Array.make m 0.;
    start = Array.make m 0.;
    start_ff = Array.make m false;
    room = Array.make m 0.;
    g = Array.make m 0.;
    de = Array.make m 0.;
    de_i = Array.make m 0.;
    dq_i = Array.make m 0.;
    dg = Array.make m 0.;
    dq = Array.make m 0.;
    ds = Array.make m 0.;
    n_blocks; blk_off; blk_idx; blk_task;
    blk_buf = Array.make seg 0.;
    blk_scratch = Array.make seg 0.;
    y_prev = Array.make (2 * m) nan;
    pen_prefix = Array.make (m + 1) 0.;
    fwd_valid = false;
    pen_valid = false }

let plan t = t.plan
let size t = t.m
