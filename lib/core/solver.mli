(** Offline voltage scheduling by non-linear programming.

    Solves the paper's NLP over the fully preemptive plan. Rather than
    optimising end-times directly under chain constraints, the solver
    uses an equivalent {e slack parametrisation} that keeps every
    iterate structurally consistent:

    - variables: per-sub-instance worst-case quotas [q_k] (projected
      onto one [sum = WCEC] simplex per instance) and non-negative
      slacks [s_k];
    - the worst-case frontier is derived by the forward recursion
      [F_k = max(r_k, F_(k-1)) + t_max * q_k + s_k], and the static
      end-time of sub-instance [k] is [e_k = F_k] — so the paper's
      release, ordering and worst-case-fit constraints hold by
      construction;
    - the only remaining constraints are the segment capacities
      [t_max * q_k + s_k <= max(0, b_k - max(r_k, F_(k-1)))], handled
      by an augmented-Lagrangian outer loop with exact O(M) forward /
      adjoint evaluation;
    - objective: runtime energy under greedy reclamation when every
      instance takes its ACEC ({!Objective.Average}, giving {b ACS}) or
      its WCEC ({!Objective.Worst}, giving the baseline {b WCS}).

    The initial point is the worst-case rate-monotonic execution at
    maximum speed (all slacks zero), which is feasible whenever the
    task set is RM-schedulable; the solver then trades that slack for
    runtime energy. *)

type error =
  | Unschedulable  (** the task set misses a deadline even at v_max *)
  | Solver_stalled of string  (** the NLP did not reach feasibility *)

type structure =
  | Exact
      (** dense reference kernels: sort-based simplex projection via
          [Float.compare], full forward/adjoint sweeps every
          evaluation, dense penalty and multiplier loops *)
  | Fast
      (** structure-exploiting kernels (the default): flat per-instance
          block projection with a raw-compare sort, incremental
          dirty-prefix forward sweeps, cached penalty prefix sums, and
          active-segment pruning of the penalty, multiplier and
          adjoint loops. Runs the same algorithm as [Exact] — the two
          differ only in kernel implementation and produce
          bit-identical schedules (asserted by the property tests);
          [Exact] exists as the auditable reference and CLI escape
          hatch ([--exact-solve]). See DESIGN.md §12. *)

type stats = {
  objective : float;  (** energy at the solution, in model units *)
  max_violation : float;  (** residual capacity violation before repair *)
  outer_iterations : int;
  inner_iterations : int;
}

val initial_point :
  plan:Lepts_preempt.Plan.t ->
  power:Lepts_power.Model.t ->
  (float array * float array, error) result
(** [(e0, quotas0)]: the worst-case RM schedule at maximum speed.
    Exposed for tests and for warm-starting experiments. *)

val repair :
  plan:Lepts_preempt.Plan.t ->
  power:Lepts_power.Model.t ->
  e:float array ->
  q:float array ->
  (float array * float array, error) result
(** Exact worst-case feasibility repair: one forward sweep capping each
    quota to its segment capacity (overflow moves to the instance's
    next segment) and lifting end-times to fit the worst case. Used as
    the final step of every solve and by {!Literal_nlp}; moves
    near-feasible solutions only microscopically. *)

val solve :
  ?wall_budget:float ->
  ?telemetry:Lepts_obs.Telemetry.solve ->
  ?jobs:int ->
  ?structure:structure ->
  ?max_outer:int ->
  ?max_inner:int ->
  ?warm_starts:(float array * float array) list ->
  mode:Objective.mode ->
  plan:Lepts_preempt.Plan.t ->
  power:Lepts_power.Model.t ->
  unit ->
  (Static_schedule.t * stats, error) result
(** Solve for the given objective mode. The NLP is non-convex, so the
    solver runs from several structurally distinct feasible starts —
    greedy as-soon-as-possible, its ALAP push-right, and any
    [warm_starts] given as [(end_times, quotas)] pairs (e.g. the WCS
    solution when solving ACS) — and returns the best. Uses the
    analytic adjoint gradient for the ideal delay model and falls back
    to central differences for the alpha model.

    [jobs] (default 1, must be [>= 1]) runs the independent starts on
    up to that many domains ({!Lepts_par.Pool}). Each start owns its
    scratch workspace and the best-pick scans results in start order
    with a strict-improvement test, so the returned schedule is
    identical for every [jobs] value (when no [wall_budget] is set —
    a budget is the one source of [jobs]-dependence, see below).

    [wall_budget] bounds the wall-clock time (seconds, monotonic
    against the system clock via [Unix.gettimeofday]) spent across all
    starts: once exhausted, no further outer iteration begins and the
    current iterate is repaired and returned if feasible. Because the
    budget is wall time shared by all starts, parallel starts each see
    more of it than sequential ones — budgeted solves may therefore
    return different (never worse-than-budgeted) results across [jobs]
    values. Non-finite objective or gradient evaluations (see
    {!Lepts_optim.Guard}) abort the offending start with a
    [Solver_stalled] error instead of iterating on garbage; when every
    start fails, the final error reports the last failure's cause.

    [telemetry] captures per-start convergence traces (one
    {!Lepts_obs.Telemetry.ring} per start, allocated once the start
    count is known) plus each start's outcome into the given sink.
    Capture is strictly observational — the returned schedule and stats
    are bit-identical with telemetry on or off, for every [jobs] value
    (asserted by the test suite). Solves are also timed under
    {!Lepts_obs.Span} paths ([solve:acs/start], ...) when spans are
    enabled, and always counted in {!Lepts_obs.Metrics.default}
    ([lepts_solver_*] series). *)

val solve_acs :
  ?wall_budget:float ->
  ?telemetry:Lepts_obs.Telemetry.solve ->
  ?jobs:int ->
  ?structure:structure ->
  ?max_outer:int ->
  ?max_inner:int ->
  ?warm_starts:(float array * float array) list ->
  plan:Lepts_preempt.Plan.t ->
  power:Lepts_power.Model.t ->
  unit ->
  (Static_schedule.t * stats, error) result
(** [solve ~mode:Average] — the paper's proposed scheduler. *)

val solve_wcs :
  ?wall_budget:float ->
  ?telemetry:Lepts_obs.Telemetry.solve ->
  ?jobs:int ->
  ?structure:structure ->
  ?max_outer:int ->
  ?max_inner:int ->
  ?warm_starts:(float array * float array) list ->
  plan:Lepts_preempt.Plan.t ->
  power:Lepts_power.Model.t ->
  unit ->
  (Static_schedule.t * stats, error) result
(** [solve ~mode:Worst] — the baseline that only considers WCEC. *)

val solve_warm :
  ?wall_budget:float ->
  ?telemetry:Lepts_obs.Telemetry.solve ->
  ?jobs:int ->
  ?structure:structure ->
  ?max_outer:int ->
  ?max_inner:int ->
  ?improvement_rel:float ->
  mode:Objective.mode ->
  prev:Static_schedule.t ->
  plan:Lepts_preempt.Plan.t ->
  power:Lepts_power.Model.t ->
  unit ->
  (Static_schedule.t * stats, error) result
(** Warm-start continuation: one projected-gradient descent seeded
    from a previous solution instead of the full multi-start. The
    previous quotas are re-projected onto the current per-instance
    [sum = WCEC] simplexes, the end-times clamped into the current
    windows and the slacks re-derived, and the augmented Lagrangian
    restarts from that point (fresh multipliers).

    The reduction is prev-first with a {e relative} strict-improvement
    threshold [improvement_rel] (default [1e-6]): the continuation
    result replaces the (repaired, re-evaluated) seed only when it is
    better by more than that fraction of the seed's objective.
    Consequences, both asserted by the test suite:

    - re-solving a converged instance warm returns the previous
      schedule bit-identically ([stats.outer_iterations = 0] marks the
      seed being kept);
    - a warm solve is never worse than its seed evaluated under the
      current objective — even under an exhausted [wall_budget], where
      the seed is returned as-is.

    When [plan] is not structurally compatible with [prev] (different
    order length, or any segment's task/instance/window differs), the
    call falls back to the cold {!solve} — [jobs] parallelises only
    that fallback; the continuation itself is a single descent.

    Intended for sweeps whose neighbouring points share optima
    (BCEC/WCEC ratio continuation, ACS seeded from WCS) and for
    re-solving after small workload changes ({!resolve_incremental}).
    Note the warm pick may differ from the cold multi-start's (fewer
    basins explored), so callers that persist results must treat
    warm-started runs as a distinct configuration (the CLI puts
    [--warm-start] in the checkpoint fingerprint). *)

val resolve_incremental :
  ?wall_budget:float ->
  ?telemetry:Lepts_obs.Telemetry.solve ->
  ?jobs:int ->
  ?structure:structure ->
  ?max_outer:int ->
  ?max_inner:int ->
  ?improvement_rel:float ->
  mode:Objective.mode ->
  prev:Static_schedule.t ->
  plan:Lepts_preempt.Plan.t ->
  power:Lepts_power.Model.t ->
  unit ->
  (Static_schedule.t * stats, error) result
(** Incremental re-solve after a change, picking the cheapest strategy
    that fits what actually changed:

    - plan structurally identical to [prev]'s (only ACEC/WCEC values
      moved — the serve-cache and adaptive-estimator case):
      {!solve_warm} continuation, never worse than the seed;
    - same order length but shifted windows (one task's timing
      changed): cold multi-start with [prev] as an extra warm start;
    - different size (task added or removed): plain cold {!solve}. *)

val solve_stochastic :
  ?telemetry:Lepts_obs.Telemetry.solve ->
  ?jobs:int ->
  ?structure:structure ->
  ?max_outer:int ->
  ?max_inner:int ->
  ?warm_starts:(float array * float array) list ->
  ?scenarios:int ->
  ?seed:int ->
  plan:Lepts_preempt.Plan.t ->
  power:Lepts_power.Model.t ->
  unit ->
  (Static_schedule.t * stats, error) result
(** Probability-weighted extension (the paper's §3.2 remark: "the
    probability weighted workload can be used in the objective function
    if the probability density function is known"): instead of the
    single ACEC point, minimise the {e mean} runtime energy over
    [scenarios] (default 16) Monte-Carlo draws of the per-instance
    workloads from the truncated-normal distribution the evaluation
    uses. Deterministic given [seed]. [stats.objective] is the mean
    scenario energy. *)

val pp_error : Format.formatter -> error -> unit
