(** Closed-form runtime energy of a static schedule under greedy slack
    reclamation (the NLP objective, paper eqns 4–14 reduced).

    Given per-sub-instance end-times [e] and worst-case quotas [w_hat],
    the online policy dispatches sub-instances in the fully-preemptive
    total order; a sub-instance with pending work starting at time [s]
    runs at the voltage that would finish its {e worst-case} quota
    exactly at its end-time, [v = voltage_for w_hat (e - s)] (clamped
    below at [v_min]). When the actual workload of every instance is
    fixed (e.g. the ACEC), the whole execution — start times, voltages,
    energy — is a deterministic recurrence:

    {v
      s_k   = max r_k (finish of previous dispatched sub-instance)
      v_k   = max v_min (voltage_for w_hat_k (e_k - s_k))
      t_k   = w_k * cycle_time v_k        (w_k = waterfall split)
      E    += c_eff * v_k^2 * w_k
    v}

    [eval] computes this energy; [eval_with_gradient] additionally
    returns its gradient with respect to [(e, w_hat)] by a hand-written
    reverse-mode (adjoint) sweep — exact for the ideal delay model, and
    cross-checked against numerical differentiation in the test
    suite. *)

type mode =
  | Average  (** instances take their ACEC — the ACS objective *)
  | Worst  (** instances take their WCEC — the WCS objective *)

type trace = {
  start_times : float array;  (** dispatch time of each sub-instance
                                  (release time if never dispatched) *)
  voltages : float array;  (** 0 for sub-instances never dispatched *)
  exec_workloads : float array;  (** waterfall split of the actual work *)
  finish_times : float array;  (** equal to start time if not dispatched *)
  energy : float;
}

val instance_totals : mode -> Lepts_preempt.Plan.t -> float array array
(** Actual workload of every instance under [mode]: [acec] or [wcec]
    of the parent task (the paper assumes every instance of a task has
    the same workload). Indexed as [.(task).(instance)]. *)

val eval :
  plan:Lepts_preempt.Plan.t ->
  power:Lepts_power.Model.t ->
  totals:float array array ->
  e:float array ->
  w_hat:float array ->
  float
(** Runtime energy for the given actual instance workloads. [e] and
    [w_hat] are indexed by total-order position. Degenerate windows are
    guarded: a dispatched sub-instance whose window [e_k - s_k] is not
    positive is priced at a tiny positive window, so the value stays
    finite (and enormous) on infeasible iterates. *)

val trace :
  plan:Lepts_preempt.Plan.t ->
  power:Lepts_power.Model.t ->
  totals:float array array ->
  e:float array ->
  w_hat:float array ->
  trace
(** Like {!eval} but returning the full execution trace. *)

val eval_with_gradient :
  plan:Lepts_preempt.Plan.t ->
  power:Lepts_power.Model.t ->
  totals:float array array ->
  e:float array ->
  w_hat:float array ->
  float * float array * float array
(** [(energy, de, dw_hat)]. Requires the ideal delay model; raises
    [Invalid_argument] for the alpha model (use numerical
    differentiation there — see {!Solver}). *)

(** {1 Workspace kernels}

    Allocation-free variants of {!eval} and {!eval_with_gradient} over
    the preallocated buffers of a {!Workspace.t}. They perform exactly
    the same floating-point operations in the same order as the
    allocating paths above — bit-identical results, asserted by the
    test suite — and are what the solver's inner loop calls. *)

val eval_ws :
  Workspace.t ->
  power:Lepts_power.Model.t ->
  totals:float array array ->
  e:float array ->
  w_hat:float array ->
  float
(** Bit-identical to {!eval} on [Workspace.plan ws]; allocates
    nothing. Clobbers the workspace's objective buffers. *)

val eval_with_gradient_ws :
  Workspace.t ->
  power:Lepts_power.Model.t ->
  totals:float array array ->
  e:float array ->
  w_hat:float array ->
  de:float array ->
  dwq:float array ->
  float
(** Bit-identical energy and gradients to {!eval_with_gradient},
    writing the gradients into [de] and [dwq] (both of the plan size)
    instead of allocating them. Requires the ideal delay model. *)
