module Plan = Lepts_preempt.Plan
module Sub = Lepts_preempt.Sub_instance
module Model = Lepts_power.Model
module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set

type mode = Average | Worst

type trace = {
  start_times : float array;
  voltages : float array;
  exec_workloads : float array;
  finish_times : float array;
  energy : float;
}

(* A dispatched sub-instance never executes fewer than [skip_eps]
   cycles. Voltages are clamped into [v_min, v_max] exactly as the
   online policy clamps them, which keeps the objective bounded on
   infeasible iterates (degenerate windows simply run at v_max and
   finish late; the NLP's fit constraints are what rule that out at the
   solution). [window_floor] only guards the division. *)
let skip_eps = 1e-12
let window_floor = 1e-12

let instance_totals mode (plan : Plan.t) =
  Array.mapi
    (fun i per_instance ->
      let task = Task_set.task plan.task_set i in
      let total = match mode with Average -> task.Task.acec | Worst -> task.Task.wcec in
      Array.map (fun _ -> total) per_instance)
    plan.instance_subs

(* Off-projection iterates (numerical differentiation, trial steps) may
   carry slightly negative quotas; the objective treats them as 0. *)
let sanitize w_hat = Array.map (fun q -> Float.max 0. q) w_hat

(* Waterfall split of the actual instance workloads onto sub-instances,
   indexed by total-order position. [w_hat] must be sanitized. *)
let split_workloads (plan : Plan.t) ~totals ~w_hat =
  let w = Array.make (Array.length plan.order) 0. in
  Array.iteri
    (fun i per_instance ->
      Array.iteri
        (fun j idxs ->
          let quotas = Array.map (fun k -> w_hat.(k)) idxs in
          let dist = Waterfall.distribute ~quotas ~total:totals.(i).(j) in
          Array.iteri (fun pos k -> w.(k) <- dist.(pos)) idxs)
        per_instance)
    plan.instance_subs;
  w

let run ~plan ~power ~totals ~e ~w_hat ~record =
  let m = Array.length plan.Plan.order in
  if Array.length e <> m || Array.length w_hat <> m then
    invalid_arg "Objective: vector length does not match plan size";
  let w_hat = sanitize w_hat in
  let w = split_workloads plan ~totals ~w_hat in
  let starts = Array.make m 0. and volts = Array.make m 0. in
  let finishes = Array.make m 0. in
  let finish = ref 0. and energy = ref 0. in
  for k = 0 to m - 1 do
    let sub = plan.Plan.order.(k) in
    if w.(k) > skip_eps then begin
      let s = Float.max sub.Sub.release !finish in
      let d = Float.max (e.(k) -. s) window_floor in
      let v =
        Lepts_util.Num_ext.clamp ~lo:power.Model.v_min ~hi:power.Model.v_max
          (Model.voltage_for power ~cycles:w_hat.(k) ~duration:d)
      in
      energy := !energy +. Model.energy power ~v ~cycles:w.(k);
      finish := s +. Model.exec_time power ~v ~cycles:w.(k);
      if record then begin
        starts.(k) <- s;
        volts.(k) <- v;
        finishes.(k) <- !finish
      end
    end
    else if record then begin
      starts.(k) <- Float.max sub.Sub.release !finish;
      finishes.(k) <- starts.(k)
    end
  done;
  { start_times = starts; voltages = volts; exec_workloads = w;
    finish_times = finishes; energy = !energy }

let eval ~plan ~power ~totals ~e ~w_hat =
  (run ~plan ~power ~totals ~e ~w_hat ~record:false).energy

let trace ~plan ~power ~totals ~e ~w_hat = run ~plan ~power ~totals ~e ~w_hat ~record:true

(* One dispatched step of the forward recurrence, with the branch
   choices needed to replay it backwards. *)
type step = {
  k : int;
  d : float;  (** guarded window *)
  v : float;
  w : float;  (** executed workload *)
  wq : float;  (** worst-case quota *)
  clamped : bool;  (** voltage clamped (at either end of the range) *)
  guarded : bool;  (** window floored *)
  s_from_finish : bool;  (** start = previous finish (vs release) *)
}

let eval_with_gradient ~plan ~power ~totals ~e ~w_hat =
  let c0 =
    match power.Model.delay with
    | Model.Ideal { c0 } -> c0
    | Model.Alpha _ ->
      invalid_arg "Objective.eval_with_gradient: analytic adjoint requires ideal delay"
  in
  let m = Array.length plan.Plan.order in
  if Array.length e <> m || Array.length w_hat <> m then
    invalid_arg "Objective: vector length does not match plan size";
  let w_hat = sanitize w_hat in
  let w = split_workloads plan ~totals ~w_hat in
  (* Forward sweep, recording branches. *)
  let steps = ref [] in
  let finish = ref 0. and energy = ref 0. in
  for k = 0 to m - 1 do
    let sub = plan.Plan.order.(k) in
    if w.(k) > skip_eps then begin
      let s_from_finish = !finish >= sub.Sub.release in
      let s = if s_from_finish then !finish else sub.Sub.release in
      let d_raw = e.(k) -. s in
      let guarded = d_raw < window_floor in
      let d = if guarded then window_floor else d_raw in
      let v_raw = c0 *. w_hat.(k) /. d in
      let clamped = v_raw <= power.Model.v_min || v_raw > power.Model.v_max in
      let v =
        Lepts_util.Num_ext.clamp ~lo:power.Model.v_min ~hi:power.Model.v_max v_raw
      in
      energy := !energy +. (power.Model.c_eff *. v *. v *. w.(k));
      finish := s +. (w.(k) *. c0 /. v);
      steps :=
        { k; d; v; w = w.(k); wq = w_hat.(k); clamped; guarded; s_from_finish }
        :: !steps
    end
  done;
  (* Backward (adjoint) sweep over the dispatched steps, most recent
     first. [phi] is the adjoint of the running finish time. *)
  let de = Array.make m 0. and dwq = Array.make m 0. in
  let dw = Array.make m 0. in
  let phi = ref 0. in
  List.iter
    (fun st ->
      let sigma = ref !phi in
      (* finish = s + w c0 / v ; E += c_eff v^2 w *)
      let alpha =
        (2. *. power.Model.c_eff *. st.w *. st.v) -. (!phi *. st.w *. c0 /. (st.v *. st.v))
      in
      let beta = (power.Model.c_eff *. st.v *. st.v) +. (!phi *. c0 /. st.v) in
      if not st.clamped then begin
        (* v = c0 wq / d *)
        dwq.(st.k) <- dwq.(st.k) +. (alpha *. c0 /. st.d);
        if not st.guarded then begin
          let delta = -.alpha *. c0 *. st.wq /. (st.d *. st.d) in
          de.(st.k) <- de.(st.k) +. delta;
          sigma := !sigma -. delta
        end
      end;
      dw.(st.k) <- dw.(st.k) +. beta;
      phi := if st.s_from_finish then !sigma else 0.)
    !steps;
  (* Waterfall vector-Jacobian products per instance. *)
  Array.iteri
    (fun i per_instance ->
      Array.iteri
        (fun j idxs ->
          let quotas = Array.map (fun k -> w_hat.(k)) idxs in
          let adjoint = Array.map (fun k -> dw.(k)) idxs in
          let back = Waterfall.backward ~quotas ~total:totals.(i).(j) ~adjoint in
          Array.iteri (fun pos k -> dwq.(k) <- dwq.(k) +. back.(pos)) idxs)
        per_instance)
    plan.Plan.instance_subs;
  (!energy, de, dwq)

(* --- Workspace kernels -------------------------------------------------- *)

(* The paths above allocate their intermediates and stay as the
   reference implementation; the [_ws] kernels below recompute exactly
   the same floating-point operations in the same order over the
   preallocated buffers of a {!Workspace.t} (asserted bit-for-bit by
   the test suite), so the solver's inner loop — which evaluates them
   tens of thousands of times per solve — allocates no arrays. *)

let check_lengths ws ~e ~w_hat =
  let m = ws.Workspace.m in
  if Array.length e <> m || Array.length w_hat <> m then
    invalid_arg "Objective: vector length does not match plan size"

(* Same-module float copies of [Float.max] (same formula as the
   stdlib, so same results including NaN and signed zeros) and
   [Num_ext.clamp]: without flambda the cross-module calls box their
   float arguments and results, and these were the last allocations
   left on the kernel hot path. *)
let[@inline] fmax (x : float) (y : float) =
  if y > x || (x <> x && not (y <> y)) then y else x

let[@inline] clampf ~(lo : float) ~(hi : float) (x : float) =
  if x < lo then lo else if x > hi then hi else x

(* sanitize + split_workloads over ws buffers: fills [ws.w_hat] and
   [ws.w]. Plain nested loops — closures would allocate. *)
let split_ws (ws : Workspace.t) ~totals ~w_hat =
  for k = 0 to ws.m - 1 do
    ws.w_hat.(k) <- fmax 0. w_hat.(k)
  done;
  let subs = ws.plan.Plan.instance_subs in
  for i = 0 to Array.length subs - 1 do
    let per = subs.(i) in
    let per_total = totals.(i) in
    for j = 0 to Array.length per - 1 do
      let idxs = per.(j) in
      let n = Array.length idxs in
      for pos = 0 to n - 1 do
        ws.wf_q.(pos) <- ws.w_hat.(idxs.(pos))
      done;
      Waterfall.distribute_into ~quotas:ws.wf_q ~n ~totals:per_total ~j
        ~into:ws.wf_out;
      for pos = 0 to n - 1 do
        ws.w.(idxs.(pos)) <- ws.wf_out.(pos)
      done
    done
  done

let eval_ws (ws : Workspace.t) ~power ~totals ~e ~w_hat =
  check_lengths ws ~e ~w_hat;
  split_ws ws ~totals ~w_hat;
  let plan = ws.Workspace.plan in
  let w = ws.Workspace.w and w_hat = ws.Workspace.w_hat in
  let finish = ref 0. and energy = ref 0. in
  (match power.Model.delay with
  | Model.Ideal { c0 } ->
    (* Inlined ideal-model arithmetic: identical expressions to
       [Model.voltage_for]/[energy]/[exec_time] (their domain checks
       cannot fire here — [w > skip_eps] implies positive cycles, and
       the window is floored), with no boxed-float returns. *)
    for k = 0 to ws.Workspace.m - 1 do
      let sub = plan.Plan.order.(k) in
      if w.(k) > skip_eps then begin
        let s = fmax sub.Sub.release !finish in
        let d = fmax (e.(k) -. s) window_floor in
        let v =
          clampf ~lo:power.Model.v_min ~hi:power.Model.v_max
            (c0 *. w_hat.(k) /. d)
        in
        energy := !energy +. (power.Model.c_eff *. v *. v *. w.(k));
        finish := s +. (w.(k) *. (c0 /. v))
      end
    done
  | Model.Alpha _ ->
    for k = 0 to ws.Workspace.m - 1 do
      let sub = plan.Plan.order.(k) in
      if w.(k) > skip_eps then begin
        let s = Float.max sub.Sub.release !finish in
        let d = Float.max (e.(k) -. s) window_floor in
        let v =
          Lepts_util.Num_ext.clamp ~lo:power.Model.v_min ~hi:power.Model.v_max
            (Model.voltage_for power ~cycles:w_hat.(k) ~duration:d)
        in
        energy := !energy +. Model.energy power ~v ~cycles:w.(k);
        finish := s +. Model.exec_time power ~v ~cycles:w.(k)
      end
    done);
  !energy

let eval_with_gradient_ws (ws : Workspace.t) ~power ~totals ~e ~w_hat ~de ~dwq =
  let c0 =
    match power.Model.delay with
    | Model.Ideal { c0 } -> c0
    | Model.Alpha _ ->
      invalid_arg "Objective.eval_with_gradient: analytic adjoint requires ideal delay"
  in
  check_lengths ws ~e ~w_hat;
  let m = ws.Workspace.m in
  if Array.length de <> m || Array.length dwq <> m then
    invalid_arg "Objective.eval_with_gradient_ws: gradient buffer length mismatch";
  split_ws ws ~totals ~w_hat;
  let plan = ws.Workspace.plan in
  let w = ws.Workspace.w and w_hat = ws.Workspace.w_hat in
  (* Forward sweep, recording branches in the struct-of-arrays step
     log. *)
  ws.st_len <- 0;
  let finish = ref 0. and energy = ref 0. in
  for k = 0 to m - 1 do
    let sub = plan.Plan.order.(k) in
    if w.(k) > skip_eps then begin
      let s_from_finish = !finish >= sub.Sub.release in
      let s = if s_from_finish then !finish else sub.Sub.release in
      let d_raw = e.(k) -. s in
      let guarded = d_raw < window_floor in
      let d = if guarded then window_floor else d_raw in
      let v_raw = c0 *. w_hat.(k) /. d in
      let clamped = v_raw <= power.Model.v_min || v_raw > power.Model.v_max in
      let v = clampf ~lo:power.Model.v_min ~hi:power.Model.v_max v_raw in
      energy := !energy +. (power.Model.c_eff *. v *. v *. w.(k));
      finish := s +. (w.(k) *. c0 /. v);
      let t = ws.st_len in
      ws.st_k.(t) <- k;
      ws.st_d.(t) <- d;
      ws.st_v.(t) <- v;
      ws.st_w.(t) <- w.(k);
      ws.st_wq.(t) <- w_hat.(k);
      ws.st_clamped.(t) <- clamped;
      ws.st_guarded.(t) <- guarded;
      ws.st_sff.(t) <- s_from_finish;
      ws.st_len <- t + 1
    end
  done;
  (* Backward (adjoint) sweep over the dispatched steps, most recent
     first. [phi] is the adjoint of the running finish time. *)
  for k = 0 to m - 1 do
    de.(k) <- 0.;
    dwq.(k) <- 0.;
    ws.dw.(k) <- 0.
  done;
  let phi = ref 0. in
  for t = ws.st_len - 1 downto 0 do
    let k = ws.st_k.(t) in
    let sigma = ref !phi in
    (* finish = s + w c0 / v ; E += c_eff v^2 w *)
    let alpha =
      (2. *. power.Model.c_eff *. ws.st_w.(t) *. ws.st_v.(t))
      -. (!phi *. ws.st_w.(t) *. c0 /. (ws.st_v.(t) *. ws.st_v.(t)))
    in
    let beta =
      (power.Model.c_eff *. ws.st_v.(t) *. ws.st_v.(t)) +. (!phi *. c0 /. ws.st_v.(t))
    in
    if not ws.st_clamped.(t) then begin
      (* v = c0 wq / d *)
      dwq.(k) <- dwq.(k) +. (alpha *. c0 /. ws.st_d.(t));
      if not ws.st_guarded.(t) then begin
        let delta = -.alpha *. c0 *. ws.st_wq.(t) /. (ws.st_d.(t) *. ws.st_d.(t)) in
        de.(k) <- de.(k) +. delta;
        sigma := !sigma -. delta
      end
    end;
    ws.dw.(k) <- ws.dw.(k) +. beta;
    phi := if ws.st_sff.(t) then !sigma else 0.
  done;
  (* Waterfall vector-Jacobian products per instance. *)
  let subs = plan.Plan.instance_subs in
  for i = 0 to Array.length subs - 1 do
    let per = subs.(i) in
    let per_total = totals.(i) in
    for j = 0 to Array.length per - 1 do
      let idxs = per.(j) in
      let n = Array.length idxs in
      for pos = 0 to n - 1 do
        ws.wf_q.(pos) <- w_hat.(idxs.(pos));
        ws.wf_a.(pos) <- ws.dw.(idxs.(pos))
      done;
      Waterfall.backward_into ~quotas:ws.wf_q ~adjoint:ws.wf_a ~n
        ~totals:per_total ~j ~into:ws.wf_out;
      for pos = 0 to n - 1 do
        dwq.(idxs.(pos)) <- dwq.(idxs.(pos)) +. ws.wf_out.(pos)
      done
    done
  done;
  !energy
