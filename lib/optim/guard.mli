(** Structured non-finite detection for the optimisation stack.

    Objective or gradient evaluations that produce NaN or infinity used
    to propagate silently through the iterative solvers, which would
    then "converge" on garbage. Every evaluation entering
    {!Projected_gradient} or {!Numdiff} now passes through these checks
    and raises {!Non_finite} with the offending quantity named, so the
    scheduling layer can turn it into a structured solver error instead
    of a wrong schedule. *)

exception Non_finite of string
(** Raised when an objective value or gradient component is NaN or
    infinite. The payload names the quantity (e.g.
    ["objective at x0 is nan"], ["gradient.(3) is inf"]). *)

val finite : where:string -> float -> float
(** [finite ~where x] is [x] if it is finite; raises {!Non_finite}
    mentioning [where] otherwise. *)

val finite_vec : where:string -> Lepts_linalg.Vec.t -> Lepts_linalg.Vec.t
(** [finite_vec ~where v] is [v] if every component is finite; raises
    {!Non_finite} naming the first offending index otherwise. *)
