(** Euclidean projections onto the feasible sets used by the scheduler
    NLPs. *)

val box : lo:Lepts_linalg.Vec.t -> hi:Lepts_linalg.Vec.t -> Lepts_linalg.Vec.t -> Lepts_linalg.Vec.t
(** Componentwise clamp onto [{x : lo <= x <= hi}]. Requires
    [lo.(i) <= hi.(i)] for all [i]. *)

val simplex : total:float -> Lepts_linalg.Vec.t -> Lepts_linalg.Vec.t
(** Projection onto the scaled simplex [{x : x >= 0, sum x = total}]
    (Held, Wolfe & Crowder; the standard sort-based O(n log n)
    algorithm). Requires [total >= 0.] and a non-empty vector. *)

val simplex_ip : total:float -> scratch:Lepts_linalg.Vec.t -> Lepts_linalg.Vec.t -> unit
(** In-place {!simplex}: projects [x] onto the scaled simplex without
    allocating, using [scratch] (same length as [x]) for the sort.
    Bit-identical to [simplex] — the same descending sort and the same
    threshold arithmetic, just written back into [x]. *)

val simplex_fast_ip :
  total:float -> scratch:Lepts_linalg.Vec.t -> n:int -> Lepts_linalg.Vec.t -> unit
(** [simplex_fast_ip ~total ~scratch ~n x] projects the prefix
    [x.[0, n)] onto the scaled simplex, bit-identical to {!simplex_ip}
    on that prefix. Same threshold-by-descending-sort arithmetic; the
    sort swaps [Float.compare] for raw float comparisons (insertion
    sort for [n <= 32], in-place heapsort above) which preserves the
    descending value sequence for any NaN-free input, and [n = 1]
    short-circuits to the algebraically-unfolded single-element result.
    [x] and [scratch] may be longer than [n]; only the prefix is
    touched. Requires [total >= 0.], [n >= 1], and NaN-free input. *)

val simplex_condat_ip :
  total:float -> scratch:Lepts_linalg.Vec.t -> n:int -> Lepts_linalg.Vec.t -> unit
(** Condat's O(n) exact-threshold simplex projection of the prefix
    [x.[0, n)]. Computes the same mathematical threshold as
    {!simplex_ip} but accumulates it in a different order, so the
    result agrees to rounding (ulps; the property tests pin 1e-12
    relative agreement componentwise) without being bit-identical —
    see DESIGN.md §12 for why the solver's default fast path keeps the
    sort-based threshold. Requires [total >= 0.], [n >= 1], NaN-free
    input, and [Array.length scratch >= n]. *)

val blocks :
  (Lepts_linalg.Vec.t -> Lepts_linalg.Vec.t) array ->
  offsets:(int * int) array ->
  Lepts_linalg.Vec.t ->
  Lepts_linalg.Vec.t
(** [blocks projs ~offsets x] applies [projs.(k)] to the slice
    [x.[off, off+len)] given by [offsets.(k) = (off, len)]. Slices must
    be disjoint; coordinates not covered by any slice pass through
    unchanged. *)
