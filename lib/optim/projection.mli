(** Euclidean projections onto the feasible sets used by the scheduler
    NLPs. *)

val box : lo:Lepts_linalg.Vec.t -> hi:Lepts_linalg.Vec.t -> Lepts_linalg.Vec.t -> Lepts_linalg.Vec.t
(** Componentwise clamp onto [{x : lo <= x <= hi}]. Requires
    [lo.(i) <= hi.(i)] for all [i]. *)

val simplex : total:float -> Lepts_linalg.Vec.t -> Lepts_linalg.Vec.t
(** Projection onto the scaled simplex [{x : x >= 0, sum x = total}]
    (Held, Wolfe & Crowder; the standard sort-based O(n log n)
    algorithm). Requires [total >= 0.] and a non-empty vector. *)

val simplex_ip : total:float -> scratch:Lepts_linalg.Vec.t -> Lepts_linalg.Vec.t -> unit
(** In-place {!simplex}: projects [x] onto the scaled simplex without
    allocating, using [scratch] (same length as [x]) for the sort.
    Bit-identical to [simplex] — the same descending sort and the same
    threshold arithmetic, just written back into [x]. *)

val blocks :
  (Lepts_linalg.Vec.t -> Lepts_linalg.Vec.t) array ->
  offsets:(int * int) array ->
  Lepts_linalg.Vec.t ->
  Lepts_linalg.Vec.t
(** [blocks projs ~offsets x] applies [projs.(k)] to the slice
    [x.[off, off+len)] given by [offsets.(k) = (off, len)]. Slices must
    be disjoint; coordinates not covered by any slice pass through
    unchanged. *)
