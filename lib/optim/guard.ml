exception Non_finite of string

let finite ~where x =
  if not (Float.is_finite x) then
    raise (Non_finite (Printf.sprintf "%s is %h" where x));
  x

let finite_vec ~where v =
  let n = Array.length v in
  for i = 0 to n - 1 do
    if not (Float.is_finite v.(i)) then
      raise (Non_finite (Printf.sprintf "%s.(%d) is %h" where i v.(i)))
  done;
  v
