(** Projected gradient descent with spectral (Barzilai–Borwein) steps
    and a non-monotone Armijo safeguard.

    Minimises a (piecewise-) smooth function over a closed convex set
    given by its Euclidean projection operator. This is the inner
    solver of {!Augmented_lagrangian}: the scheduling feasible sets
    (boxes and per-instance workload simplexes) project cheaply. *)

type report = {
  x : Lepts_linalg.Vec.t;
  value : float;
  step_norm : float;  (** norm of the last projected-gradient step *)
  iterations : int;
  converged : bool;
}

val minimize :
  ?max_iter:int ->
  ?tol:float ->
  ?history:int ->
  f:(Lepts_linalg.Vec.t -> float) ->
  grad:(Lepts_linalg.Vec.t -> Lepts_linalg.Vec.t) ->
  project:(Lepts_linalg.Vec.t -> Lepts_linalg.Vec.t) ->
  x0:Lepts_linalg.Vec.t ->
  unit ->
  report
(** [minimize ~f ~grad ~project ~x0 ()] iterates
    [x <- project (x - step * grad x)] with BB step lengths, accepting a
    step when it improves on the maximum of the last [history] (default
    10) objective values (Grippo–Lampariello–Lucidi non-monotone rule).
    Converged when the projected step drops below [tol] (default
    [1e-9]) relative to the iterate norm. [x0] is projected first, so
    it need not be feasible.

    Raises {!Guard.Non_finite} when the objective at the (projected)
    start point or any accepted gradient contains NaN or infinity —
    iterating on non-finite values would otherwise silently return a
    garbage minimiser. Non-finite {e trial} objective values during
    backtracking remain non-fatal: the step is simply rejected. *)

val minimize_ws :
  ?telemetry:Lepts_obs.Telemetry.ring ->
  ?should_stop:(unit -> bool) ->
  ?max_iter:int ->
  ?tol:float ->
  ?history:int ->
  f:(Lepts_linalg.Vec.t -> float) ->
  grad_into:(Lepts_linalg.Vec.t -> into:Lepts_linalg.Vec.t -> unit) ->
  project_ip:(Lepts_linalg.Vec.t -> unit) ->
  x0:Lepts_linalg.Vec.t ->
  unit ->
  report
(** Workspace variant of {!minimize}: the gradient is written into a
    caller-visible buffer by [grad_into] and the projection mutates its
    argument in place, so the descent loop performs no per-iteration
    array allocation when [f], [grad_into] and [project_ip] are
    themselves allocation-free. Iterates, accepted steps and the
    returned report are bit-identical to {!minimize} with the
    equivalent functional operators ({!minimize} is implemented as a
    wrapper over this). The vector passed to [f]/[grad_into] is an
    internal buffer: read it, never retain it.

    [?telemetry] captures one {!Lepts_obs.Telemetry.record} per
    iteration (accepted steps and the terminal stalled/zero-step
    iteration) into the given ring. Capture is strictly observational:
    the performed float operations are identical with or without it,
    so the returned report is bit-identical either way.

    [?should_stop] is polled once per iteration, before the iteration
    runs; returning [true] ends the descent with [converged = false]
    and the current iterate. The solver uses it to enforce a wall
    budget at iteration granularity without paying a clock read per
    iteration (the callback itself decides how often to consult the
    clock). A callback that never returns [true] leaves the run
    bit-identical to omitting it. *)
