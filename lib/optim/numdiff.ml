module Vec = Lepts_linalg.Vec

let gradient ?(h = 1e-6) ~f x =
  let x = Vec.copy x in
  let n = Vec.dim x in
  Array.init n (fun i ->
      let step = h *. Float.max 1. (Float.abs x.(i)) in
      let xi = x.(i) in
      x.(i) <- xi +. step;
      let fp = Guard.finite ~where:(Printf.sprintf "f(x + h e_%d)" i) (f x) in
      x.(i) <- xi -. step;
      let fm = Guard.finite ~where:(Printf.sprintf "f(x - h e_%d)" i) (f x) in
      x.(i) <- xi;
      (fp -. fm) /. (2. *. step))

let directional ?(h = 1e-6) ~f x ~dir =
  let norm = Vec.norm2 dir in
  if norm = 0. then 0.
  else
    let step = h /. norm in
    let fp = Guard.finite ~where:"f(x + h d)" (f (Vec.axpy step dir x)) in
    let fm = Guard.finite ~where:"f(x - h d)" (f (Vec.axpy (-.step) dir x)) in
    (fp -. fm) /. (2. *. step)
