module Vec = Lepts_linalg.Vec

let box ~lo ~hi x =
  if Vec.dim lo <> Vec.dim x || Vec.dim hi <> Vec.dim x then
    invalid_arg "Projection.box: dimension mismatch";
  Array.mapi
    (fun i v ->
      assert (lo.(i) <= hi.(i));
      Lepts_util.Num_ext.clamp ~lo:lo.(i) ~hi:hi.(i) v)
    x

(* Sort-based simplex projection: find the threshold tau such that
   sum max(0, x_i - tau) = total, then shift-and-clip. *)
let desc a b = Float.compare b a

let tau_of_sorted ~total sorted =
  let n = Array.length sorted in
  let cumulative = ref 0. and tau = ref (sorted.(0) -. total) in
  for i = 0 to n - 1 do
    cumulative := !cumulative +. sorted.(i);
    let candidate = (!cumulative -. total) /. float_of_int (i + 1) in
    if sorted.(i) > candidate then tau := candidate
  done;
  !tau

let simplex ~total x =
  if total < 0. then invalid_arg "Projection.simplex: negative total";
  let n = Vec.dim x in
  if n = 0 then invalid_arg "Projection.simplex: empty vector";
  let sorted = Array.copy x in
  Array.sort desc sorted;
  let tau = tau_of_sorted ~total sorted in
  Array.map (fun v -> Float.max 0. (v -. tau)) x

(* Monomorphic descending insertion sort. [Array.sort desc] on a float
   array boxes two floats per comparison (polymorphic [get]); this
   sorts the same comparator's total order with none. The slices
   projected here are one instance's preempted segments — small — so
   O(n^2) is fine. Equal keys are bitwise-indistinguishable under
   [Float.compare]'s total order, so the sorted values are identical
   to [Array.sort]'s whatever either algorithm does with ties. *)
let sort_desc_ip (a : float array) n =
  for i = 1 to n - 1 do
    let key = a.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && Float.compare a.(!j) key < 0 do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- key
  done

let[@inline] fmax (x : float) (y : float) =
  if y > x || (x <> x && not (y <> y)) then y else x

let simplex_ip ~total ~scratch x =
  if total < 0. then invalid_arg "Projection.simplex_ip: negative total";
  let n = Vec.dim x in
  if n = 0 then invalid_arg "Projection.simplex_ip: empty vector";
  if Array.length scratch <> n then
    invalid_arg "Projection.simplex_ip: scratch length mismatch";
  Array.blit x 0 scratch 0 n;
  sort_desc_ip scratch n;
  let tau = tau_of_sorted ~total scratch in
  for i = 0 to n - 1 do
    x.(i) <- fmax 0. (x.(i) -. tau)
  done

(* --- Structure-exploiting fast path (PR 8) ----------------------------- *)

(* [tau_of_sorted] over an explicit prefix length, so callers with a
   shared max-length buffer (the solver's flat block index) can reuse
   one allocation for every block. Identical arithmetic. *)
let tau_of_sorted_n ~total (sorted : float array) n =
  let cumulative = ref 0. and tau = ref (sorted.(0) -. total) in
  for i = 0 to n - 1 do
    cumulative := !cumulative +. sorted.(i);
    let candidate = (!cumulative -. total) /. float_of_int (i + 1) in
    if sorted.(i) > candidate then tau := candidate
  done;
  !tau

(* Fast descending sort: insertion with raw (unboxed) comparisons for
   short slices, in-place min-heapsort above. Both produce the same
   descending multiset of values as [sort_desc_ip], so the cumulative
   sums in [tau_of_sorted] — and hence tau and the projected vector —
   are bit-identical (asserted by the property tests). The only
   ordering difference from [Float.compare]'s total order is the
   placement of [-0.] among zeros, which cannot change any cumulative
   sum that starts from [+0.]. Inputs must be NaN-free — true for every
   solver iterate ({!Lepts_optim.Guard} aborts on non-finite values)
   and required of callers. *)
let sort_desc_fast_ip (a : float array) n =
  if n <= 256 then
    for i = 1 to n - 1 do
      let key = a.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && a.(!j) < key do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- key
    done
  else begin
    (* Min-heap at the front; extracting the minimum to the shrinking
       tail leaves the array in descending order. *)
    let sift root size =
      let r = ref root and live = ref true in
      while !live do
        let l = (2 * !r) + 1 in
        if l >= size then live := false
        else begin
          let c = if l + 1 < size && a.(l + 1) < a.(l) then l + 1 else l in
          if a.(c) < a.(!r) then begin
            let tmp = a.(c) in
            a.(c) <- a.(!r);
            a.(!r) <- tmp;
            r := c
          end
          else live := false
        end
      done
    in
    for i = (n / 2) - 1 downto 0 do
      sift i n
    done;
    for last = n - 1 downto 1 do
      let tmp = a.(0) in
      a.(0) <- a.(last);
      a.(last) <- tmp;
      sift 0 last
    done
  end

let simplex_fast_ip ~total ~scratch ~n (x : float array) =
  if total < 0. then invalid_arg "Projection.simplex_fast_ip: negative total";
  if n <= 0 then invalid_arg "Projection.simplex_fast_ip: empty prefix";
  if Array.length x < n || Array.length scratch < n then
    invalid_arg "Projection.simplex_fast_ip: buffer shorter than n";
  if n = 1 then
    (* The sorted path's tau degenerates to [x0 - total] (the candidate
       and the initialiser coincide), so the result is this exact
       expression — not [total], which differs when the subtraction
       rounds. *)
    x.(0) <- fmax 0. (x.(0) -. (x.(0) -. total))
  else begin
    Array.blit x 0 scratch 0 n;
    sort_desc_fast_ip scratch n;
    let tau = tau_of_sorted_n ~total scratch n in
    for i = 0 to n - 1 do
      x.(i) <- fmax 0. (x.(i) -. tau)
    done
  end

(* Condat's O(n) exact-threshold simplex projection ("Fast projection
   onto the simplex and the l1 ball", Math. Prog. 158, 2016). Same
   mathematical threshold as the sort path, found without sorting: a
   candidate active set [v] (front of [scratch]) with its running
   threshold [rho], a backlog [v~] (tail of [scratch], disjoint because
   the two together never hold more than [n] values), then pruning
   passes until the active set is consistent. The float result agrees
   with {!simplex_ip} to summation-order rounding (ulps, asserted at
   1e-12 relative by the property tests) but is NOT bit-identical —
   which is why the solver's default fast path keeps threshold-by-sort
   (see DESIGN.md §12) and this kernel serves huge unpinned blocks. *)
let simplex_condat_ip ~total ~scratch ~n (x : float array) =
  if total < 0. then invalid_arg "Projection.simplex_condat_ip: negative total";
  if n <= 0 then invalid_arg "Projection.simplex_condat_ip: empty prefix";
  if Array.length x < n || Array.length scratch < n then
    invalid_arg "Projection.simplex_condat_ip: buffer shorter than n";
  if total = 0. then
    for i = 0 to n - 1 do
      x.(i) <- 0.
    done
  else begin
    let nv = ref 1 and ntilde = ref 0 in
    scratch.(0) <- x.(0);
    let rho = ref (x.(0) -. total) in
    for i = 1 to n - 1 do
      let xi = x.(i) in
      if xi > !rho then begin
        rho := !rho +. ((xi -. !rho) /. float_of_int (!nv + 1));
        if !rho > xi -. total then begin
          scratch.(!nv) <- xi;
          incr nv
        end
        else begin
          (* Current set cannot contain the threshold: shelve it. *)
          for j = 0 to !nv - 1 do
            scratch.(n - 1 - !ntilde - j) <- scratch.(j)
          done;
          ntilde := !ntilde + !nv;
          scratch.(0) <- xi;
          nv := 1;
          rho := xi -. total
        end
      end
    done;
    (* Re-examine the backlog, oldest first (reading each value before
       any write can reach its slot: [nv + remaining <= n] keeps the
       write tip at or below the read position). *)
    for t = !ntilde - 1 downto 0 do
      let y = scratch.(n - 1 - t) in
      if y > !rho then begin
        scratch.(!nv) <- y;
        incr nv;
        rho := !rho +. ((y -. !rho) /. float_of_int !nv)
      end
    done;
    (* Pruning passes: remove values at or below the threshold until
       none remain. [total > 0.] keeps the maximum strictly above rho,
       so the set never empties. *)
    let changed = ref true in
    while !changed do
      changed := false;
      let i = ref 0 in
      while !i < !nv do
        let y = scratch.(!i) in
        if y <= !rho then begin
          decr nv;
          scratch.(!i) <- scratch.(!nv);
          rho := !rho +. ((!rho -. y) /. float_of_int !nv);
          changed := true
        end
        else incr i
      done
    done;
    let tau = !rho in
    for i = 0 to n - 1 do
      x.(i) <- fmax 0. (x.(i) -. tau)
    done
  end

let blocks projs ~offsets x =
  if Array.length projs <> Array.length offsets then
    invalid_arg "Projection.blocks: arity mismatch";
  let out = Vec.copy x in
  Array.iteri
    (fun kidx (off, len) ->
      if off < 0 || len < 0 || off + len > Vec.dim x then
        invalid_arg "Projection.blocks: slice out of range";
      let slice = Array.sub x off len in
      let projected = projs.(kidx) slice in
      if Array.length projected <> len then
        invalid_arg "Projection.blocks: projection changed slice length";
      Array.blit projected 0 out off len)
    offsets;
  out
