module Vec = Lepts_linalg.Vec

let box ~lo ~hi x =
  if Vec.dim lo <> Vec.dim x || Vec.dim hi <> Vec.dim x then
    invalid_arg "Projection.box: dimension mismatch";
  Array.mapi
    (fun i v ->
      assert (lo.(i) <= hi.(i));
      Lepts_util.Num_ext.clamp ~lo:lo.(i) ~hi:hi.(i) v)
    x

(* Sort-based simplex projection: find the threshold tau such that
   sum max(0, x_i - tau) = total, then shift-and-clip. *)
let desc a b = Float.compare b a

let tau_of_sorted ~total sorted =
  let n = Array.length sorted in
  let cumulative = ref 0. and tau = ref (sorted.(0) -. total) in
  for i = 0 to n - 1 do
    cumulative := !cumulative +. sorted.(i);
    let candidate = (!cumulative -. total) /. float_of_int (i + 1) in
    if sorted.(i) > candidate then tau := candidate
  done;
  !tau

let simplex ~total x =
  if total < 0. then invalid_arg "Projection.simplex: negative total";
  let n = Vec.dim x in
  if n = 0 then invalid_arg "Projection.simplex: empty vector";
  let sorted = Array.copy x in
  Array.sort desc sorted;
  let tau = tau_of_sorted ~total sorted in
  Array.map (fun v -> Float.max 0. (v -. tau)) x

(* Monomorphic descending insertion sort. [Array.sort desc] on a float
   array boxes two floats per comparison (polymorphic [get]); this
   sorts the same comparator's total order with none. The slices
   projected here are one instance's preempted segments — small — so
   O(n^2) is fine. Equal keys are bitwise-indistinguishable under
   [Float.compare]'s total order, so the sorted values are identical
   to [Array.sort]'s whatever either algorithm does with ties. *)
let sort_desc_ip (a : float array) n =
  for i = 1 to n - 1 do
    let key = a.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && Float.compare a.(!j) key < 0 do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- key
  done

let[@inline] fmax (x : float) (y : float) =
  if y > x || (x <> x && not (y <> y)) then y else x

let simplex_ip ~total ~scratch x =
  if total < 0. then invalid_arg "Projection.simplex_ip: negative total";
  let n = Vec.dim x in
  if n = 0 then invalid_arg "Projection.simplex_ip: empty vector";
  if Array.length scratch <> n then
    invalid_arg "Projection.simplex_ip: scratch length mismatch";
  Array.blit x 0 scratch 0 n;
  sort_desc_ip scratch n;
  let tau = tau_of_sorted ~total scratch in
  for i = 0 to n - 1 do
    x.(i) <- fmax 0. (x.(i) -. tau)
  done

let blocks projs ~offsets x =
  if Array.length projs <> Array.length offsets then
    invalid_arg "Projection.blocks: arity mismatch";
  let out = Vec.copy x in
  Array.iteri
    (fun kidx (off, len) ->
      if off < 0 || len < 0 || off + len > Vec.dim x then
        invalid_arg "Projection.blocks: slice out of range";
      let slice = Array.sub x off len in
      let projected = projs.(kidx) slice in
      if Array.length projected <> len then
        invalid_arg "Projection.blocks: projection changed slice length";
      Array.blit projected 0 out off len)
    offsets;
  out
