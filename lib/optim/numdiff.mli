(** Numerical differentiation.

    Used to cross-check hand-written gradients in tests and as a
    fallback when a problem supplies no analytic gradient. *)

val gradient :
  ?h:float -> f:(Lepts_linalg.Vec.t -> float) -> Lepts_linalg.Vec.t -> Lepts_linalg.Vec.t
(** [gradient ~f x] approximates the gradient of [f] at [x] with central
    differences of step [h] (default [1e-6] scaled by coordinate
    magnitude). [x] is not modified. Raises {!Guard.Non_finite} when an
    evaluation of [f] returns NaN or infinity. *)

val directional :
  ?h:float ->
  f:(Lepts_linalg.Vec.t -> float) ->
  Lepts_linalg.Vec.t ->
  dir:Lepts_linalg.Vec.t ->
  float
(** Central-difference approximation of the directional derivative of
    [f] at [x] along [dir]. Raises {!Guard.Non_finite} when an
    evaluation of [f] returns NaN or infinity. *)
