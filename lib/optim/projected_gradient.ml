module Vec = Lepts_linalg.Vec

type report = {
  x : Vec.t;
  value : float;
  step_norm : float;
  iterations : int;
  converged : bool;
}

(* Same-module float copies of [Float.max]/[Float.min] (same formulas
   as the stdlib, so same results): without flambda the cross-module
   calls box floats on every loop iteration. *)
let[@inline] fmax (x : float) (y : float) =
  if y > x || (x <> x && not (y <> y)) then y else x

let[@inline] fmin (x : float) (y : float) =
  if y < x || (x <> x && not (y <> y)) then y else x

(* Fused one-pass kernels. Accumulation order is identical to the
   [Vec.sub_into] + [Vec.norm2] / [Vec.dot] sequences they replace
   (ascending index, one accumulator per product), so iterates stay
   bit-identical; fusing removes two full vector passes per attempt. *)
let sub_norm_slope (xt : Vec.t) (x : Vec.t) (g : Vec.t) ~(into : Vec.t) =
  let n = Array.length into in
  let ss = ref 0. and sg = ref 0. in
  for i = 0 to n - 1 do
    let di = xt.(i) -. x.(i) in
    into.(i) <- di;
    ss := !ss +. (di *. di);
    sg := !sg +. (g.(i) *. di)
  done;
  (sqrt !ss, !sg)

let bb_terms (gn : Vec.t) (g : Vec.t) (d : Vec.t) ~(into_y : Vec.t) =
  let n = Array.length into_y in
  let sy = ref 0. and ss = ref 0. in
  for i = 0 to n - 1 do
    let yi = gn.(i) -. g.(i) in
    into_y.(i) <- yi;
    sy := !sy +. (d.(i) *. yi);
    ss := !ss +. (d.(i) *. d.(i))
  done;
  (!sy, !ss)

(* Workspace core: all per-iteration vectors (trial point, search
   direction, gradients, BB difference) live in buffers allocated once
   here, so a full minimize run performs no per-iteration array
   allocation as long as [f], [grad_into] and [project_ip] are
   allocation-free themselves. The arithmetic is exactly the allocating
   version's, componentwise, so results are bit-identical. *)
let minimize_ws ?telemetry ?should_stop ?(max_iter = 2000) ?(tol = 1e-9)
    ?(history = 10) ~f ~grad_into ~project_ip ~x0 () =
  let n = Vec.dim x0 in
  let x = ref (Vec.copy x0) in
  project_ip !x;
  let fx = ref (Guard.finite ~where:"objective at x0" (f !x)) in
  let g = ref (Vec.zeros n) in
  grad_into !x ~into:!g;
  ignore (Guard.finite_vec ~where:"gradient at x0" !g);
  let xt = ref (Vec.zeros n) and gn = ref (Vec.zeros n) in
  let d = Vec.zeros n and y = Vec.zeros n in
  let recent = Array.make history !fx in
  let recent_idx = ref 0 in
  let push_value v =
    recent.(!recent_idx) <- v;
    recent_idx := (!recent_idx + 1) mod history
  in
  let reference () =
    let acc = ref neg_infinity in
    for i = 0 to history - 1 do
      acc := fmax !acc recent.(i)
    done;
    !acc
  in
  let step = ref (1. /. Float.max 1. (Vec.norm_inf !g)) in
  let iterations = ref 0 in
  let converged = ref false in
  let last_step_norm = ref infinity in
  (* External stop request (the solver's wall budget). Read-only with
     respect to the descent state: when it never fires the iterates are
     bit-identical to a run without it. *)
  let stop_requested =
    match should_stop with None -> fun () -> false | Some f -> f
  in
  while (not !converged) && !iterations < max_iter && not (stop_requested ()) do
    incr iterations;
    (* Backtrack the trial step until the non-monotone Armijo test
       passes; the projected difference is the true search direction.
       [xt] and [d] are overwritten on every try. *)
    let rec attempt trial tries =
      if tries > 60 then `Stalled tries
      else begin
        Vec.axpy_into (-.trial) !g !x ~into:!xt;
        project_ip !xt;
        let dnorm, slope = sub_norm_slope !xt !x !g ~into:d in
        if dnorm = 0. then `Zero_step tries
        else
          let fx_trial = f !xt in
          if Float.is_finite fx_trial
             && fx_trial <= reference () +. (1e-4 *. slope)
          then `Accepted (fx_trial, dnorm, trial, tries)
          else attempt (trial /. 2.) (tries + 1)
      end
    in
    (* Observational only: telemetry pushes store already-computed
       scalars, so the float operations — and hence the iterates — are
       bit-identical with telemetry on or off. *)
    let observe ~objective ~step ~step_norm ~backtracks ~projections =
      match telemetry with
      | None -> ()
      | Some ring ->
        Lepts_obs.Telemetry.push ring ~iteration:!iterations ~objective ~step
          ~step_norm ~backtracks ~projections
    in
    match attempt !step 0 with
    | `Stalled tries ->
      (* no progress possible at this scale *)
      converged := true;
      observe ~objective:!fx ~step:!step ~step_norm:!last_step_norm
        ~backtracks:tries ~projections:tries
    | `Zero_step tries ->
      last_step_norm := 0.;
      converged := true;
      observe ~objective:!fx ~step:!step ~step_norm:0. ~backtracks:tries
        ~projections:(tries + 1)
    | `Accepted (fx_next, dnorm, trial, tries) ->
      grad_into !xt ~into:!gn;
      ignore (Guard.finite_vec ~where:"gradient" !gn);
      (* Barzilai–Borwein step length for the next iteration. *)
      let sy, ss = bb_terms !gn !g d ~into_y:y in
      step := (if sy > 1e-16 then ss /. sy else fmin (2. *. !step) 1e6);
      if (not (Float.is_finite !step)) || !step <= 0. then step := 1.;
      let x_prev = !x in
      x := !xt;
      xt := x_prev;
      let g_prev = !g in
      g := !gn;
      gn := g_prev;
      fx := fx_next;
      push_value fx_next;
      last_step_norm := dnorm;
      let scale = fmax 1. (Vec.norm2 !x) in
      if !last_step_norm <= tol *. scale then converged := true;
      observe ~objective:fx_next ~step:trial ~step_norm:dnorm
        ~backtracks:tries ~projections:(tries + 1)
  done;
  { x = Vec.copy !x; value = !fx; step_norm = !last_step_norm;
    iterations = !iterations; converged = !converged }

let minimize ?max_iter ?tol ?history ~f ~grad ~project ~x0 () =
  let n = Vec.dim x0 in
  let grad_into x ~into = Array.blit (grad x) 0 into 0 n in
  let project_ip x =
    let r = project x in
    if r != x then Array.blit r 0 x 0 n
  in
  minimize_ws ?max_iter ?tol ?history ~f ~grad_into ~project_ip ~x0 ()
