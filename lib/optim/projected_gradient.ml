module Vec = Lepts_linalg.Vec

type report = {
  x : Vec.t;
  value : float;
  step_norm : float;
  iterations : int;
  converged : bool;
}

let minimize ?(max_iter = 2000) ?(tol = 1e-9) ?(history = 10) ~f ~grad ~project ~x0 () =
  let x = ref (project (Vec.copy x0)) in
  let fx = ref (Guard.finite ~where:"objective at x0" (f !x)) in
  let g = ref (Guard.finite_vec ~where:"gradient at x0" (grad !x)) in
  let recent = Array.make history !fx in
  let recent_idx = ref 0 in
  let push_value v =
    recent.(!recent_idx) <- v;
    recent_idx := (!recent_idx + 1) mod history
  in
  let reference () = Array.fold_left Float.max neg_infinity recent in
  let step = ref (1. /. Float.max 1. (Vec.norm_inf !g)) in
  let iterations = ref 0 in
  let converged = ref false in
  let last_step_norm = ref infinity in
  while (not !converged) && !iterations < max_iter do
    incr iterations;
    (* Backtrack the trial step until the non-monotone Armijo test
       passes; the projected difference is the true search direction. *)
    let rec attempt trial tries =
      if tries > 60 then None
      else
        let x_trial = project (Vec.axpy (-.trial) !g !x) in
        let d = Vec.sub x_trial !x in
        let dnorm = Vec.norm2 d in
        if dnorm = 0. then Some (x_trial, !fx, d, true)
        else
          let fx_trial = f x_trial in
          let slope = Vec.dot !g d in
          if Float.is_finite fx_trial
             && fx_trial <= reference () +. (1e-4 *. slope)
          then Some (x_trial, fx_trial, d, false)
          else attempt (trial /. 2.) (tries + 1)
    in
    match attempt !step 0 with
    | None -> converged := true (* no progress possible at this scale *)
    | Some (_, _, _, true) ->
      last_step_norm := 0.;
      converged := true
    | Some (x_next, fx_next, d, false) ->
      let g_next = Guard.finite_vec ~where:"gradient" (grad x_next) in
      (* Barzilai–Borwein step length for the next iteration. *)
      let y = Vec.sub g_next !g in
      let sy = Vec.dot d y and ss = Vec.dot d d in
      step := (if sy > 1e-16 then ss /. sy else Float.min (2. *. !step) 1e6);
      if (not (Float.is_finite !step)) || !step <= 0. then step := 1.;
      x := x_next;
      fx := fx_next;
      g := g_next;
      push_value fx_next;
      last_step_norm := Vec.norm2 d;
      let scale = Float.max 1. (Vec.norm2 !x) in
      if !last_step_norm <= tol *. scale then converged := true
  done;
  { x = !x; value = !fx; step_norm = !last_step_norm;
    iterations = !iterations; converged = !converged }
