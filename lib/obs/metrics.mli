(** Metrics registry: counters, gauges and histograms that the solver,
    simulator, robust pipeline and parallel pools report into.

    Design constraints, mirroring the workspace discipline of
    {!Lepts_core.Workspace} (DESIGN.md §8):

    - {b no allocation on the hot path} — counters and histogram
      observations are atomic integer adds into cells and buckets
      preallocated at registration time; only registration and
      {!snapshot} allocate;
    - {b domain-safe} — every update is an [Atomic] operation, so
      metrics can be bumped concurrently from {!Lepts_par.Pool}
      workers; because integer adds commute, the aggregate values are
      identical for every [jobs] value;
    - {b deterministic read-out} — {!snapshot} returns samples sorted
      by identity (name, then labels), so exports are byte-stable for
      equal values.

    Histogram sums are accumulated in fixed-point nano-units
    (resolution [1e-9], range ±4.6e9 in observed units) to keep the
    observation path allocation-free; gauge writes box one float and
    are intended for low-frequency state, not per-iteration updates. *)

type t
(** A registry: a named collection of metrics. *)

val create : unit -> t

val default : t
(** The process-wide registry that the library's built-in
    instrumentation (solver, runner, robust pipeline) reports into. *)

type counter
(** Monotonically increasing integer. *)

type gauge
(** Last-write-wins float. *)

type histogram
(** Cumulative-bucket histogram with preallocated buckets. *)

val counter : ?help:string -> ?labels:(string * string) list -> t -> string -> counter
(** [counter t name] registers (or retrieves) the counter with this
    identity. Raises [Invalid_argument] if the identity is already
    bound to a different metric kind. *)

val gauge : ?help:string -> ?labels:(string * string) list -> t -> string -> gauge

val histogram :
  ?help:string ->
  ?labels:(string * string) list ->
  buckets:float array ->
  t ->
  string ->
  histogram
(** [buckets] are finite upper bounds, strictly increasing; an implicit
    [+inf] bucket is always appended. Raises [Invalid_argument] on
    unsorted or non-finite bounds, or if the identity exists with
    different buckets. *)

val incr : ?by:int -> counter -> unit
(** Atomic add (default 1). Negative [by] raises [Invalid_argument] —
    counters only go up. *)

val counter_value : counter -> int

val set : gauge -> float -> unit

val gauge_value : gauge -> float

val observe : histogram -> float -> unit
(** Atomically increments the first bucket whose upper bound is
    [>= value] (or the overflow bucket), the total count, and the
    fixed-point sum. Allocation-free. *)

(** An immutable read-out of one metric. *)
type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of {
      upper : float array;  (** finite upper bounds, as registered *)
      counts : int array;  (** per-bucket counts, [length upper + 1];
                               the last cell is the [+inf] bucket *)
      sum : float;  (** sum of observations (1e-9 resolution) *)
      count : int;  (** total observations *)
    }

type sample = {
  name : string;
  labels : (string * string) list;  (** sorted by key *)
  help : string;
  value : value;
}

val snapshot : t -> sample list
(** All metrics, sorted by (name, labels). Safe to call while other
    domains update — each cell is read atomically, though the samples
    of one histogram are not a single consistent cut. *)

val reset : t -> unit
(** Zero every registered metric (identities stay registered). Meant
    for the start of a per-run report, not for concurrent use. *)
