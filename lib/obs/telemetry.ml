type record = {
  outer : int;
  iteration : int;
  objective : float;
  step : float;
  step_norm : float;
  backtracks : int;
  projections : int;
}

(* Struct-of-arrays ring: push writes unboxed scalars into float/int
   arrays preallocated at creation, so the solver's inner loop pays a
   few stores per iteration and no allocation. *)
type ring = {
  capacity : int;
  mutable phase : int;
  mutable pushed : int;
  r_outer : int array;
  r_iter : int array;
  r_obj : float array;
  r_step : float array;
  r_norm : float array;
  r_back : int array;
  r_proj : int array;
}

let ring ~capacity =
  if capacity <= 0 then invalid_arg "Telemetry.ring: capacity must be positive";
  { capacity; phase = 0; pushed = 0;
    r_outer = Array.make capacity 0;
    r_iter = Array.make capacity 0;
    r_obj = Array.make capacity 0.;
    r_step = Array.make capacity 0.;
    r_norm = Array.make capacity 0.;
    r_back = Array.make capacity 0;
    r_proj = Array.make capacity 0 }

let set_phase r phase = r.phase <- phase

let push r ~iteration ~objective ~step ~step_norm ~backtracks ~projections =
  let slot = r.pushed mod r.capacity in
  r.r_outer.(slot) <- r.phase;
  r.r_iter.(slot) <- iteration;
  r.r_obj.(slot) <- objective;
  r.r_step.(slot) <- step;
  r.r_norm.(slot) <- step_norm;
  r.r_back.(slot) <- backtracks;
  r.r_proj.(slot) <- projections;
  r.pushed <- r.pushed + 1

let pushed r = r.pushed
let length r = min r.pushed r.capacity

let records r =
  let n = length r in
  let first = r.pushed - n in
  List.init n (fun i ->
      let slot = (first + i) mod r.capacity in
      { outer = r.r_outer.(slot); iteration = r.r_iter.(slot);
        objective = r.r_obj.(slot); step = r.r_step.(slot);
        step_norm = r.r_norm.(slot); backtracks = r.r_back.(slot);
        projections = r.r_proj.(slot) })

let clear r =
  r.pushed <- 0;
  r.phase <- 0

type start = {
  start_index : int;
  s_ring : ring;
  mutable outer_rounds : int;
  mutable inner_iterations : int;
  mutable final_objective : float;
  mutable failure : string option;
}

type solve = { label : string; capacity : int; mutable starts : start array }

let solve_sink ?(capacity = 512) ~label () =
  if capacity <= 0 then invalid_arg "Telemetry.solve_sink: capacity must be positive";
  { label; capacity; starts = [||] }

let init_starts s ~n =
  s.starts <-
    Array.init n (fun start_index ->
        { start_index; s_ring = ring ~capacity:s.capacity; outer_rounds = 0;
          inner_iterations = 0; final_objective = Float.nan; failure = None })

let start_slot s i = s.starts.(i)

type collector = {
  max_solves : int;
  c_capacity : int;
  lock : Mutex.t;
  mutable kept : solve list;  (* newest first *)
  mutable n_kept : int;
  mutable n_dropped : int;
}

let collector ?(max_solves = 32) ?(capacity = 512) () =
  if max_solves <= 0 then invalid_arg "Telemetry.collector: max_solves must be positive";
  { max_solves; c_capacity = capacity; lock = Mutex.create (); kept = [];
    n_kept = 0; n_dropped = 0 }

let register c ~label =
  Mutex.lock c.lock;
  let slot =
    if c.n_kept >= c.max_solves then begin
      c.n_dropped <- c.n_dropped + 1;
      None
    end
    else begin
      let s = solve_sink ~capacity:c.c_capacity ~label () in
      c.kept <- s :: c.kept;
      c.n_kept <- c.n_kept + 1;
      Some s
    end
  in
  Mutex.unlock c.lock;
  slot

let solves c =
  Mutex.lock c.lock;
  let kept = c.kept in
  Mutex.unlock c.lock;
  List.sort (fun a b -> String.compare a.label b.label) kept

let dropped c =
  Mutex.lock c.lock;
  let d = c.n_dropped in
  Mutex.unlock c.lock;
  d
