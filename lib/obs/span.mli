(** Hierarchical profiling spans: where does the wall clock go?

    [with_ ~name f] times [f] and accumulates the duration under a
    {e path} — [name] prefixed by the enclosing span's path on the same
    domain (["solve:acs/start"]), so nesting gives a call-tree keyed by
    strings. Aggregation is per (domain, path): each domain owns a
    private table (domain-local storage), so recording takes no lock;
    {!report} merges the tables into one list sorted by path.

    {b Cross-domain hierarchy.} A {!Lepts_par.Pool} worker starts with
    an empty span stack, so a span opened inside a worker would lose
    its logical parent — and worse, its path would differ between
    [jobs = 1] (caller's stack visible) and [jobs > 1]. Callers that
    fan work out therefore capture {!current} {e before} the pool call
    and pass it as [?parent], which overrides the stack-derived prefix:
    paths, and hence the merged report's keys and counts, are identical
    for every [jobs] value (asserted by the test suite). Durations are
    wall-clock and machine-dependent, of course.

    {b Overhead.} Disabled (the default), [with_] is one atomic load
    plus the call to [f]. Enabled, it adds two [Unix.gettimeofday]
    calls and a hashtable update.

    {b Read barrier.} {!report} and {!reset} must run while no other
    domain is inside [with_] — in practice: after every pool has
    joined. Worker tables outlive their domains, so spans recorded by
    a pool are visible to the caller after [Pool.run] returns. *)

type agg = {
  path : string;
  count : int;  (** completed spans at this path *)
  total_s : float;  (** summed wall-clock seconds *)
  max_s : float;  (** longest single span *)
}

val set_enabled : bool -> unit
(** Spans are disabled by default; {!with_} is then a pass-through. *)

val enabled : unit -> bool

val with_ : ?parent:string -> name:string -> (unit -> 'a) -> 'a
(** Time [f] under [parent ^ "/" ^ name] ([parent] defaults to the
    current domain's innermost open span; an empty parent means a root
    span). The span is recorded even when [f] raises. *)

val current : unit -> string option
(** The calling domain's innermost open span path, for handing to
    [?parent] across a pool boundary. *)

val report : unit -> agg list
(** Merge all domains' tables, sorted by path. Counts and paths are
    deterministic for deterministic control flow; times are not. *)

val reset : unit -> unit
(** Drop all recorded spans (registered domain tables survive). *)

val pp_report : Format.formatter -> agg list -> unit
(** One line per path: count, total and mean milliseconds. *)
