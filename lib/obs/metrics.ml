(* Fixed-point scale for histogram sums: integer nano-units make the
   observation path a plain [Atomic.fetch_and_add] (allocation-free and
   commutative across domains) at the cost of 1e-9 resolution. *)
let units_per = 1e9

type counter = { c_cell : int Atomic.t }
type gauge = { g_cell : float Atomic.t }

type histogram = {
  h_upper : float array;
  h_counts : int Atomic.t array;  (* length = length h_upper + 1 (+inf) *)
  h_total : int Atomic.t;
  h_sum_units : int Atomic.t;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type registered = {
  r_name : string;
  r_labels : (string * string) list;
  r_help : string;
  r_metric : metric;
}

type t = { lock : Mutex.t; tbl : (string, registered) Hashtbl.t }

let create () = { lock = Mutex.create (); tbl = Hashtbl.create 32 }
let default = create ()

let identity name labels =
  name
  ^ String.concat ""
      (List.map (fun (k, v) -> "\x00" ^ k ^ "\x01" ^ v) labels)

let sort_labels labels =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Get-or-create under the registry lock. [make] builds the metric,
   [check] validates an existing binding and extracts the right kind. *)
let register t ~name ~labels ~help ~make ~check =
  let labels = sort_labels labels in
  let id = identity name labels in
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl id with
      | Some r -> check r.r_metric
      | None ->
        let m, v = make () in
        Hashtbl.add t.tbl id { r_name = name; r_labels = labels; r_help = help; r_metric = m };
        v)

let kind_error name = invalid_arg ("Metrics: " ^ name ^ " already registered with another kind")

let counter ?(help = "") ?(labels = []) t name =
  register t ~name ~labels ~help
    ~make:(fun () ->
      let c = { c_cell = Atomic.make 0 } in
      (Counter c, c))
    ~check:(function Counter c -> c | _ -> kind_error name)

let gauge ?(help = "") ?(labels = []) t name =
  register t ~name ~labels ~help
    ~make:(fun () ->
      let g = { g_cell = Atomic.make 0. } in
      (Gauge g, g))
    ~check:(function Gauge g -> g | _ -> kind_error name)

let histogram ?(help = "") ?(labels = []) ~buckets t name =
  let n = Array.length buckets in
  for i = 0 to n - 1 do
    if not (Float.is_finite buckets.(i)) then
      invalid_arg "Metrics.histogram: bucket bounds must be finite";
    if i > 0 && buckets.(i) <= buckets.(i - 1) then
      invalid_arg "Metrics.histogram: bucket bounds must be strictly increasing"
  done;
  register t ~name ~labels ~help
    ~make:(fun () ->
      let h =
        { h_upper = Array.copy buckets;
          h_counts = Array.init (n + 1) (fun _ -> Atomic.make 0);
          h_total = Atomic.make 0;
          h_sum_units = Atomic.make 0 }
      in
      (Histogram h, h))
    ~check:(function
      | Histogram h ->
        if h.h_upper <> buckets then
          invalid_arg ("Metrics: histogram " ^ name ^ " already registered with other buckets");
        h
      | _ -> kind_error name)

let incr ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.incr: counters only go up";
  ignore (Atomic.fetch_and_add c.c_cell by)

let counter_value c = Atomic.get c.c_cell
let set g v = Atomic.set g.g_cell v
let gauge_value g = Atomic.get g.g_cell

let observe h v =
  let n = Array.length h.h_upper in
  (* Linear scan: bucket arrays are short (<= ~16) and the scan is
     branch-predictable; no allocation either way. *)
  let i = ref 0 in
  while !i < n && h.h_upper.(!i) < v do
    i := !i + 1
  done;
  ignore (Atomic.fetch_and_add h.h_counts.(!i) 1);
  ignore (Atomic.fetch_and_add h.h_total 1);
  ignore (Atomic.fetch_and_add h.h_sum_units (int_of_float (v *. units_per)))

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of { upper : float array; counts : int array; sum : float; count : int }

type sample = {
  name : string;
  labels : (string * string) list;
  help : string;
  value : value;
}

let sample_of r =
  let value =
    match r.r_metric with
    | Counter c -> Counter_v (Atomic.get c.c_cell)
    | Gauge g -> Gauge_v (Atomic.get g.g_cell)
    | Histogram h ->
      Histogram_v
        { upper = Array.copy h.h_upper;
          counts = Array.map Atomic.get h.h_counts;
          sum = float_of_int (Atomic.get h.h_sum_units) /. units_per;
          count = Atomic.get h.h_total }
  in
  { name = r.r_name; labels = r.r_labels; help = r.r_help; value }

let snapshot t =
  let all =
    with_lock t (fun () -> Hashtbl.fold (fun _ r acc -> r :: acc) t.tbl [])
  in
  List.map sample_of
    (List.sort
       (fun a b ->
         match String.compare a.r_name b.r_name with
         | 0 -> compare a.r_labels b.r_labels
         | c -> c)
       all)

let reset t =
  with_lock t (fun () ->
      Hashtbl.iter
        (fun _ r ->
          match r.r_metric with
          | Counter c -> Atomic.set c.c_cell 0
          | Gauge g -> Atomic.set g.g_cell 0.
          | Histogram h ->
            Array.iter (fun cell -> Atomic.set cell 0) h.h_counts;
            Atomic.set h.h_total 0;
            Atomic.set h.h_sum_units 0)
        t.tbl)
