(** Solver convergence telemetry: per-iteration records captured into
    preallocated ring buffers.

    The projected-gradient inner loop
    ({!Lepts_optim.Projected_gradient.minimize_ws}) pushes one record
    per iteration when handed a {!ring}; {!Lepts_core.Solver} allocates
    one ring per multi-start and wraps them in a {!solve} sink. Capture
    is strictly observational: the solver performs exactly the same
    floating-point operations with telemetry on or off, so results are
    bit-identical either way (asserted by the test suite with
    [Int64.bits_of_float]).

    Rings keep the {e last} [capacity] records (older ones are
    overwritten); {!pushed} tells how many were seen in total. Pushing
    writes scalars into preallocated arrays — no allocation on the hot
    path. A ring is single-writer: each solver start owns its own. *)

type record = {
  outer : int;  (** augmented-Lagrangian outer round (see {!set_phase}) *)
  iteration : int;  (** projected-gradient iteration within its inner solve *)
  objective : float;  (** accepted objective value *)
  step : float;  (** Barzilai–Borwein step length used *)
  step_norm : float;  (** norm of the accepted projected step *)
  backtracks : int;  (** Armijo backtracking halvings this iteration *)
  projections : int;  (** projection applications this iteration *)
}

type ring

val ring : capacity:int -> ring
(** Preallocates storage for [capacity] records
    (raises [Invalid_argument] when [capacity <= 0]). *)

val set_phase : ring -> int -> unit
(** Tag subsequent pushes with this outer-round index. *)

val push :
  ring ->
  iteration:int ->
  objective:float ->
  step:float ->
  step_norm:float ->
  backtracks:int ->
  projections:int ->
  unit
(** Record one iteration (allocation-free). *)

val pushed : ring -> int
(** Total records pushed since creation / {!clear}. *)

val length : ring -> int
(** Records currently held: [min pushed capacity]. *)

val records : ring -> record list
(** The kept window, oldest first. *)

val clear : ring -> unit

(** {2 Per-solve sinks}

    One {!solve} collects the telemetry of a whole multi-start solve:
    a ring per start plus that start's outcome. Create it with
    {!solve_sink} and pass it to [Lepts_core.Solver.solve*]; the
    solver calls {!init_starts} once it knows the start count and
    fills the slots (each start is written by exactly one domain, and
    the caller reads only after the solve returns). *)

type start = {
  start_index : int;
  s_ring : ring;
  mutable outer_rounds : int;
  mutable inner_iterations : int;
  mutable final_objective : float;  (** [nan] until the start succeeds *)
  mutable failure : string option;  (** why the start failed, if it did *)
}

type solve = {
  label : string;
  capacity : int;  (** ring capacity handed to each start *)
  mutable starts : start array;  (** empty until the solver runs *)
}

val solve_sink : ?capacity:int -> label:string -> unit -> solve
(** [capacity] defaults to 512 records per start. *)

val init_starts : solve -> n:int -> unit
(** Allocate [n] fresh start slots (called by the solver). *)

val start_slot : solve -> int -> start

(** {2 Bounded collectors}

    Experiment sweeps run hundreds of solves; a {!collector} keeps the
    first [max_solves] of them (mutex-protected, so sweep workers on
    several domains can register concurrently) and drops the rest,
    counting what was dropped — a report must say when it is a sample,
    never silently truncate. *)

type collector

val collector : ?max_solves:int -> ?capacity:int -> unit -> collector
(** Defaults: keep 32 solves, 512 records per start. *)

val register : collector -> label:string -> solve option
(** A fresh registered sink, or [None] when the collector is full
    (the drop is counted either way). *)

val solves : collector -> solve list
(** Registered sinks sorted by label (registration order is
    nondeterministic under parallel sweeps; the sort makes reports
    stable). *)

val dropped : collector -> int
(** Solves that ran without capture because the collector was full. *)
