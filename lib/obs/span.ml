type agg = { path : string; count : int; total_s : float; max_s : float }

type cell = { mutable n : int; mutable total : float; mutable max : float }

(* One table per domain, created lazily through domain-local storage:
   recording never takes a lock. The global list (mutex-protected, only
   touched on table creation / report / reset) keeps every table
   reachable after its domain dies, so a pool's spans survive the
   join. *)
type table = { mutable stack : string list; cells : (string, cell) Hashtbl.t }

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let registry_lock = Mutex.create ()
let registry : table list ref = ref []

let dls_key =
  Domain.DLS.new_key (fun () ->
      let t = { stack = []; cells = Hashtbl.create 16 } in
      Mutex.lock registry_lock;
      registry := t :: !registry;
      Mutex.unlock registry_lock;
      t)

let current () =
  match (Domain.DLS.get dls_key).stack with [] -> None | p :: _ -> Some p

let record t path dt =
  match Hashtbl.find_opt t.cells path with
  | Some c ->
    c.n <- c.n + 1;
    c.total <- c.total +. dt;
    if dt > c.max then c.max <- dt
  | None -> Hashtbl.add t.cells path { n = 1; total = dt; max = dt }

let with_ ?parent ~name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t = Domain.DLS.get dls_key in
    let prefix =
      match parent with
      | Some "" -> ""
      | Some p -> p ^ "/"
      | None -> ( match t.stack with [] -> "" | p :: _ -> p ^ "/")
    in
    let path = prefix ^ name in
    t.stack <- path :: t.stack;
    let t0 = Unix.gettimeofday () in
    Fun.protect f ~finally:(fun () ->
        let dt = Unix.gettimeofday () -. t0 in
        (match t.stack with [] -> () | _ :: rest -> t.stack <- rest);
        record t path dt)
  end

let report () =
  Mutex.lock registry_lock;
  let tables = !registry in
  Mutex.unlock registry_lock;
  let merged : (string, cell) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun t ->
      Hashtbl.iter
        (fun path c ->
          match Hashtbl.find_opt merged path with
          | Some m ->
            m.n <- m.n + c.n;
            m.total <- m.total +. c.total;
            if c.max > m.max then m.max <- c.max
          | None -> Hashtbl.add merged path { n = c.n; total = c.total; max = c.max })
        t.cells)
    tables;
  List.sort
    (fun a b -> String.compare a.path b.path)
    (Hashtbl.fold
       (fun path c acc ->
         { path; count = c.n; total_s = c.total; max_s = c.max } :: acc)
       merged [])

let reset () =
  Mutex.lock registry_lock;
  List.iter
    (fun t ->
      Hashtbl.reset t.cells;
      t.stack <- [])
    !registry;
  Mutex.unlock registry_lock

let pp_report ppf aggs =
  List.iter
    (fun a ->
      Format.fprintf ppf "%-48s %8d x %10.2f ms total %10.3f ms mean@." a.path
        a.count (1e3 *. a.total_s)
        (1e3 *. a.total_s /. float_of_int (max 1 a.count)))
    aggs
