(** Machine-readable run reports: JSON, CSV and Prometheus text.

    A {!report} bundles everything one experiment run observed — a
    metrics snapshot, the merged span profile and the captured solver
    telemetry — and the exporters below serialise it without any
    external dependency. All three are pure functions of the report, so
    equal reports give byte-equal output (the golden tests rely on
    this). Non-finite floats are emitted as [null] in JSON and [NaN]
    in Prometheus text. *)

type report = {
  command : string;  (** e.g. ["fig6a"] *)
  argv : string list;  (** the invocation, for provenance *)
  elapsed_s : float;  (** wall clock of the whole run *)
  metrics : Metrics.sample list;
  spans : Span.agg list;
  solves : Telemetry.solve list;
  dropped_solves : int;
      (** solves that ran uncaptured because the collector was full *)
}

val report :
  command:string ->
  ?argv:string list ->
  elapsed_s:float ->
  metrics:Metrics.t ->
  ?telemetry:Telemetry.collector ->
  unit ->
  report
(** Snapshot [metrics] and the global span profile ({!Span.report})
    into a report. Call after all pools have joined. *)

val to_json : report -> string
(** The full report as one JSON object (schema
    ["lepts-obs-report/1"]): metrics (with histogram buckets), span
    aggregates, and per-solve / per-start convergence records. *)

val convergence_csv : report -> string
(** One row per captured convergence record:
    [solve,start,outer,iteration,objective,step,step_norm,backtracks,projections]
    — the file to hand a plotting script. *)

val metrics_csv : report -> string
(** One row per scalar: counters/gauges as
    [kind,name,labels,field,value]; histograms exploded into one row
    per bucket plus [sum]/[count]. *)

val to_prometheus : report -> string
(** Prometheus text exposition of the metrics snapshot, plus the span
    profile as synthetic [lepts_span_seconds_total] /
    [lepts_span_count] families labelled by path. *)
