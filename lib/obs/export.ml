type report = {
  command : string;
  argv : string list;
  elapsed_s : float;
  metrics : Metrics.sample list;
  spans : Span.agg list;
  solves : Telemetry.solve list;
  dropped_solves : int;
}

let report ~command ?(argv = []) ~elapsed_s ~metrics ?telemetry () =
  let solves, dropped_solves =
    match telemetry with
    | None -> ([], 0)
    | Some c -> (Telemetry.solves c, Telemetry.dropped c)
  in
  {
    command;
    argv;
    elapsed_s;
    metrics = Metrics.snapshot metrics;
    spans = Span.report ();
    solves;
    dropped_solves;
  }

(* JSON helpers — same conventions as bench/main.ml: shortest
   round-trippable floats, non-finite values as null. *)

let buf_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_string b s =
  Buffer.add_char b '"';
  buf_escape b s;
  Buffer.add_char b '"'

let add_float b v =
  if Float.is_finite v then Buffer.add_string b (Printf.sprintf "%.17g" v)
  else Buffer.add_string b "null"

let add_list b xs add =
  Buffer.add_char b '[';
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ',';
      add b x)
    xs;
  Buffer.add_char b ']'

let add_labels b labels =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      add_string b k;
      Buffer.add_char b ':';
      add_string b v)
    labels;
  Buffer.add_char b '}'

let add_metric b (s : Metrics.sample) =
  Buffer.add_string b "{\"name\":";
  add_string b s.name;
  Buffer.add_string b ",\"labels\":";
  add_labels b s.labels;
  if s.help <> "" then begin
    Buffer.add_string b ",\"help\":";
    add_string b s.help
  end;
  (match s.value with
  | Metrics.Counter_v v ->
    Buffer.add_string b ",\"kind\":\"counter\",\"value\":";
    Buffer.add_string b (string_of_int v)
  | Metrics.Gauge_v v ->
    Buffer.add_string b ",\"kind\":\"gauge\",\"value\":";
    add_float b v
  | Metrics.Histogram_v { upper; counts; sum; count } ->
    Buffer.add_string b ",\"kind\":\"histogram\",\"upper\":";
    add_list b (Array.to_list upper) add_float;
    Buffer.add_string b ",\"counts\":";
    add_list b (Array.to_list counts) (fun b c ->
        Buffer.add_string b (string_of_int c));
    Buffer.add_string b ",\"sum\":";
    add_float b sum;
    Buffer.add_string b ",\"count\":";
    Buffer.add_string b (string_of_int count));
  Buffer.add_char b '}'

let add_span b (a : Span.agg) =
  Buffer.add_string b "{\"path\":";
  add_string b a.path;
  Buffer.add_string b ",\"count\":";
  Buffer.add_string b (string_of_int a.count);
  Buffer.add_string b ",\"total_s\":";
  add_float b a.total_s;
  Buffer.add_string b ",\"max_s\":";
  add_float b a.max_s;
  Buffer.add_char b '}'

let add_record b (r : Telemetry.record) =
  Buffer.add_string b "{\"outer\":";
  Buffer.add_string b (string_of_int r.outer);
  Buffer.add_string b ",\"iteration\":";
  Buffer.add_string b (string_of_int r.iteration);
  Buffer.add_string b ",\"objective\":";
  add_float b r.objective;
  Buffer.add_string b ",\"step\":";
  add_float b r.step;
  Buffer.add_string b ",\"step_norm\":";
  add_float b r.step_norm;
  Buffer.add_string b ",\"backtracks\":";
  Buffer.add_string b (string_of_int r.backtracks);
  Buffer.add_string b ",\"projections\":";
  Buffer.add_string b (string_of_int r.projections);
  Buffer.add_char b '}'

let add_start b (st : Telemetry.start) =
  Buffer.add_string b "{\"start\":";
  Buffer.add_string b (string_of_int st.start_index);
  Buffer.add_string b ",\"outer_rounds\":";
  Buffer.add_string b (string_of_int st.outer_rounds);
  Buffer.add_string b ",\"inner_iterations\":";
  Buffer.add_string b (string_of_int st.inner_iterations);
  Buffer.add_string b ",\"final_objective\":";
  add_float b st.final_objective;
  (match st.failure with
  | None -> ()
  | Some msg ->
    Buffer.add_string b ",\"failure\":";
    add_string b msg);
  Buffer.add_string b ",\"records_seen\":";
  Buffer.add_string b (string_of_int (Telemetry.pushed st.s_ring));
  Buffer.add_string b ",\"records\":";
  add_list b (Telemetry.records st.s_ring) add_record;
  Buffer.add_char b '}'

let add_solve b (s : Telemetry.solve) =
  Buffer.add_string b "{\"label\":";
  add_string b s.label;
  Buffer.add_string b ",\"starts\":";
  add_list b (Array.to_list s.starts) add_start;
  Buffer.add_char b '}'

let to_json r =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"schema\":\"lepts-obs-report/1\",\"command\":";
  add_string b r.command;
  Buffer.add_string b ",\"argv\":";
  add_list b r.argv (fun b s -> add_string b s);
  Buffer.add_string b ",\"elapsed_s\":";
  add_float b r.elapsed_s;
  Buffer.add_string b ",\"metrics\":";
  add_list b r.metrics add_metric;
  Buffer.add_string b ",\"spans\":";
  add_list b r.spans add_span;
  Buffer.add_string b ",\"solves\":";
  add_list b r.solves add_solve;
  Buffer.add_string b ",\"dropped_solves\":";
  Buffer.add_string b (string_of_int r.dropped_solves);
  Buffer.add_string b "}\n";
  Buffer.contents b

(* CSV: no quoting needed — labels and paths never contain commas by
   construction (metric names and span names are identifiers), but
   escape defensively anyway by replacing commas. *)

let csv_field s =
  String.map (fun c -> if c = ',' || c = '\n' then ';' else c) s

let csv_float v = Printf.sprintf "%.17g" v

let convergence_csv r =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "solve,start,outer,iteration,objective,step,step_norm,backtracks,projections\n";
  List.iter
    (fun (s : Telemetry.solve) ->
      Array.iter
        (fun (st : Telemetry.start) ->
          List.iter
            (fun (rec_ : Telemetry.record) ->
              Buffer.add_string b
                (Printf.sprintf "%s,%d,%d,%d,%s,%s,%s,%d,%d\n"
                   (csv_field s.label) st.start_index rec_.outer
                   rec_.iteration (csv_float rec_.objective)
                   (csv_float rec_.step) (csv_float rec_.step_norm)
                   rec_.backtracks rec_.projections))
            (Telemetry.records st.s_ring))
        s.starts)
    r.solves;
  Buffer.contents b

let labels_string labels =
  String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let metrics_csv r =
  let b = Buffer.create 4096 in
  Buffer.add_string b "kind,name,labels,field,value\n";
  let row kind name labels field value =
    Buffer.add_string b
      (Printf.sprintf "%s,%s,%s,%s,%s\n" kind (csv_field name)
         (csv_field (labels_string labels))
         field value)
  in
  List.iter
    (fun (s : Metrics.sample) ->
      match s.value with
      | Metrics.Counter_v v ->
        row "counter" s.name s.labels "value" (string_of_int v)
      | Metrics.Gauge_v v -> row "gauge" s.name s.labels "value" (csv_float v)
      | Metrics.Histogram_v { upper; counts; sum; count } ->
        Array.iteri
          (fun i u ->
            row "histogram" s.name s.labels
              (Printf.sprintf "le=%s" (csv_float u))
              (string_of_int counts.(i)))
          upper;
        row "histogram" s.name s.labels "le=+Inf"
          (string_of_int counts.(Array.length upper));
        row "histogram" s.name s.labels "sum" (csv_float sum);
        row "histogram" s.name s.labels "count" (string_of_int count))
    r.metrics;
  List.iter
    (fun (a : Span.agg) ->
      row "span" a.path [] "count" (string_of_int a.count);
      row "span" a.path [] "total_s" (csv_float a.total_s);
      row "span" a.path [] "max_s" (csv_float a.max_s))
    r.spans;
  Buffer.contents b

(* Prometheus text exposition format. *)

let prom_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prom_float v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.17g" v

let prom_labels labels =
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v))
           labels)
    ^ "}"

let to_prometheus r =
  let b = Buffer.create 4096 in
  let seen_header = Hashtbl.create 16 in
  let header name kind help =
    if not (Hashtbl.mem seen_header name) then begin
      Hashtbl.add seen_header name ();
      if help <> "" then
        Buffer.add_string b
          (Printf.sprintf "# HELP %s %s\n" name (prom_escape help));
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun (s : Metrics.sample) ->
      match s.value with
      | Metrics.Counter_v v ->
        header s.name "counter" s.help;
        Buffer.add_string b
          (Printf.sprintf "%s%s %d\n" s.name (prom_labels s.labels) v)
      | Metrics.Gauge_v v ->
        header s.name "gauge" s.help;
        Buffer.add_string b
          (Printf.sprintf "%s%s %s\n" s.name (prom_labels s.labels)
             (prom_float v))
      | Metrics.Histogram_v { upper; counts; sum; count } ->
        header s.name "histogram" s.help;
        let cumulative = ref 0 in
        Array.iteri
          (fun i u ->
            cumulative := !cumulative + counts.(i);
            Buffer.add_string b
              (Printf.sprintf "%s_bucket%s %d\n" s.name
                 (prom_labels (s.labels @ [ ("le", prom_float u) ]))
                 !cumulative))
          upper;
        cumulative := !cumulative + counts.(Array.length upper);
        Buffer.add_string b
          (Printf.sprintf "%s_bucket%s %d\n" s.name
             (prom_labels (s.labels @ [ ("le", "+Inf") ]))
             !cumulative);
        Buffer.add_string b
          (Printf.sprintf "%s_sum%s %s\n" s.name (prom_labels s.labels)
             (prom_float sum));
        Buffer.add_string b
          (Printf.sprintf "%s_count%s %d\n" s.name (prom_labels s.labels)
             count))
    r.metrics;
  if r.spans <> [] then begin
    Buffer.add_string b "# TYPE lepts_span_seconds_total counter\n";
    List.iter
      (fun (a : Span.agg) ->
        Buffer.add_string b
          (Printf.sprintf "lepts_span_seconds_total{path=\"%s\"} %s\n"
             (prom_escape a.path) (prom_float a.total_s)))
      r.spans;
    Buffer.add_string b "# TYPE lepts_span_count counter\n";
    List.iter
      (fun (a : Span.agg) ->
        Buffer.add_string b
          (Printf.sprintf "lepts_span_count{path=\"%s\"} %d\n"
             (prom_escape a.path) a.count))
      r.spans
  end;
  Buffer.contents b
