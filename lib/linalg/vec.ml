type t = float array

let create n x = Array.make n x
let zeros n = Array.make n 0.
let of_list = Array.of_list
let copy = Array.copy
let dim = Array.length

let check_dims name a b =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
                   (Array.length a) (Array.length b))

let add a b =
  check_dims "add" a b;
  Array.mapi (fun i x -> x +. b.(i)) a

let sub a b =
  check_dims "sub" a b;
  Array.mapi (fun i x -> x -. b.(i)) a

let scale s a = Array.map (fun x -> s *. x) a

let axpy a x y =
  check_dims "axpy" x y;
  Array.mapi (fun i xi -> (a *. xi) +. y.(i)) x

let axpy_into a x y ~into =
  check_dims "axpy_into" x y;
  check_dims "axpy_into" x into;
  for i = 0 to Array.length x - 1 do
    into.(i) <- (a *. x.(i)) +. y.(i)
  done

let sub_into a b ~into =
  check_dims "sub_into" a b;
  check_dims "sub_into" a into;
  for i = 0 to Array.length a - 1 do
    into.(i) <- a.(i) -. b.(i)
  done

let axpy_ip a x ~into =
  check_dims "axpy_ip" x into;
  for i = 0 to Array.length x - 1 do
    into.(i) <- into.(i) +. (a *. x.(i))
  done

let dot a b =
  check_dims "dot" a b;
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm2 a = sqrt (dot a a)

let norm_inf a = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. a

let dist2 a b =
  check_dims "dist2" a b;
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let map = Array.map

let map2 f a b =
  check_dims "map2" a b;
  Array.mapi (fun i x -> f x b.(i)) a

let for_all2 f a b =
  check_dims "for_all2" a b;
  let rec go i = i >= Array.length a || (f a.(i) b.(i) && go (i + 1)) in
  go 0

let max_elt a =
  if Array.length a = 0 then invalid_arg "Vec.max_elt: empty vector";
  Array.fold_left Float.max a.(0) a

let concat parts = Array.concat parts

let pp ppf a =
  Format.fprintf ppf "[@[";
  Array.iteri (fun i x -> Format.fprintf ppf "%s%g" (if i = 0 then "" else ";@ ") x) a;
  Format.fprintf ppf "@]]"
