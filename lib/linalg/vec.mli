(** Dense float vectors.

    Thin wrappers over [float array] used by the optimizer. Operations
    ending in [_ip] mutate their first argument in place; all others
    allocate. Dimension mismatches raise [Invalid_argument]. *)

type t = float array

val create : int -> float -> t
val zeros : int -> t
val of_list : float list -> t
val copy : t -> t
val dim : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val axpy : float -> t -> t -> t
(** [axpy a x y] is [a*x + y]. *)

val axpy_ip : float -> t -> into:t -> unit
(** [axpy_ip a x ~into:y] updates [y <- y + a*x]. *)

val axpy_into : float -> t -> t -> into:t -> unit
(** [axpy_into a x y ~into] writes [a*x + y] into [into] without
    allocating. [into] may alias [x] or [y]. Componentwise it performs
    exactly the same operations as {!axpy}, so results are
    bit-identical. *)

val sub_into : t -> t -> into:t -> unit
(** [sub_into a b ~into] writes [a - b] into [into] without
    allocating; bit-identical to {!sub}. [into] may alias [a] or
    [b]. *)

val dot : t -> t -> float
val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float
val dist2 : t -> t -> float
(** Euclidean distance between two vectors. *)

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val for_all2 : (float -> float -> bool) -> t -> t -> bool
val max_elt : t -> float
val concat : t list -> t
val pp : Format.formatter -> t -> unit
