module Runner = Lepts_sim.Runner
module Sampler = Lepts_sim.Sampler
module Event_sim = Lepts_sim.Event_sim
module Outcome = Lepts_sim.Outcome
module Estimator = Lepts_sim.Estimator
module Solver = Lepts_core.Solver
module Static_schedule = Lepts_core.Static_schedule
module Plan = Lepts_preempt.Plan
module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set
module Pool = Lepts_par.Pool
module Rng = Lepts_prng.Xoshiro256
module Table = Lepts_util.Table
module Metrics = Lepts_obs.Metrics
module Span = Lepts_obs.Span

(* Estimator-loop instrumentation (DESIGN.md §9, doc/ADAPTATION.md).
   Counts and the latency histogram are bumped on the caller's domain
   only — observations are folded and re-solves run between epochs —
   so no per-round hot-path cost is added. *)
let m_observations =
  Metrics.counter ~help:"rounds folded into the ACEC estimator"
    Metrics.default "lepts_adapt_observations_total"

let m_checks =
  Metrics.counter ~help:"estimator drift checks (epoch boundaries)"
    Metrics.default "lepts_adapt_drift_checks_total"

let m_drift_events =
  Metrics.counter ~help:"drift checks that exceeded the re-solve threshold"
    Metrics.default "lepts_adapt_drift_events_total"

let m_resolves =
  Metrics.counter ~help:"incremental re-solves committed by the adaptive loop"
    Metrics.default "lepts_adapt_resolves_total"

let m_resolve_failures =
  Metrics.counter ~help:"incremental re-solves that returned an error"
    Metrics.default "lepts_adapt_resolve_failures_total"

let m_exhausted =
  Metrics.counter
    ~help:"drift events refused because the re-solve budget was spent"
    Metrics.default "lepts_adapt_budget_exhausted_total"

let m_resolve_seconds =
  Metrics.histogram ~help:"wall-clock seconds per committed incremental re-solve"
    ~buckets:[| 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 0.1; 0.3; 1.; 3. |]
    Metrics.default "lepts_adapt_resolve_seconds"

let m_estimate_ratio =
  Metrics.histogram
    ~help:"ACEC estimate / offline ACEC, per task, at each drift check"
    ~buckets:[| 0.25; 0.5; 0.75; 0.9; 1.0; 1.1; 1.25; 1.5; 2.0; 4.0 |]
    Metrics.default "lepts_adapt_estimate_ratio"

type config = {
  estimator : Estimator.config;
  resolve_every : int;
  structure : Solver.structure;
}

let default_config =
  { estimator = Estimator.default_config;
    resolve_every = 25;
    structure = Solver.Fast }

type counters = {
  drift_checks : int;
  drift_events : int;
  resolves : int;
  resolve_failures : int;
  exhausted : int;
}

type point = {
  label : string;
  static_summary : Runner.summary;
  adaptive_summary : Runner.summary;
  counters : counters;
  estimates : float array;
  initial : float array;
  final_drift : float;
  improvement_pct : float;
}

let run ?(rounds = 500) ?(jobs = 1) ?dist ?(config = default_config)
    ?(label = "truncated normal") ?on_stats ~spec
    ~(schedule : Static_schedule.t) ~policy ~seed () =
  if rounds <= 0 then invalid_arg "Adaptive.run: rounds must be positive";
  if config.resolve_every < 1 then
    invalid_arg "Adaptive.run: resolve_every must be >= 1";
  Estimator.validate config.estimator;
  Fault_injector.validate spec;
  let plan = schedule.Static_schedule.plan in
  let power = schedule.Static_schedule.power in
  let base = Rng.create ~seed in
  let stats_for tag = Option.map (fun f s -> f ~label:(tag ^ ":" ^ label) s) on_stats in
  (* Both arms derive round [r]'s workload draw and fault scenario from
     the same per-round generator and the {e original} plan, so they
     face identical actual workloads — the adaptive arm differs only in
     the schedule it responds with. *)
  let one_round ~sched r =
    let rng = Runner.round_rng ~rng:base ~round:r in
    let totals = Sampler.instance_totals ?dist plan ~rng in
    let s = Fault_injector.perturb spec ~round:r plan ~totals in
    let outcome =
      Event_sim.run ~faults:s.Fault_injector.faults ~schedule:sched ~policy
        ~totals:s.Fault_injector.totals ()
    in
    ( { Runner.energy = outcome.Outcome.energy;
        misses = outcome.Outcome.deadline_misses;
        shed = outcome.Outcome.shed_instances },
      outcome.Outcome.consumed )
  in
  let static_summary =
    Span.with_ ~name:("arm:static:" ^ label) @@ fun () ->
    let results, stats = Pool.run ~jobs ~n:rounds ~f:(fun r -> fst (one_round ~sched:schedule r)) in
    Option.iter (fun f -> f stats) (stats_for "static");
    let summary = Runner.summarize results in
    Runner.record_metrics summary;
    summary
  in
  let n_tasks = Task_set.size plan.Plan.task_set in
  let initial =
    Array.init n_tasks (fun i -> (Task_set.task plan.Plan.task_set i).Task.acec)
  in
  let adaptive_summary, counters, est_final =
    Span.with_ ~name:("arm:adaptive:" ^ label) @@ fun () ->
    let current = ref schedule in
    let est = ref (Estimator.create config.estimator ~plan) in
    let checks = ref 0 and events = ref 0 and resolves = ref 0 in
    let failures = ref 0 and exhausted = ref 0 in
    let results = Array.make rounds { Runner.energy = 0.; misses = 0; shed = 0 } in
    let start = ref 0 in
    while !start < rounds do
      let chunk = min config.resolve_every (rounds - !start) in
      let sched = !current in
      let first = !start in
      let batch, stats =
        Pool.run ~jobs ~n:chunk ~f:(fun i -> one_round ~sched (first + i))
      in
      Option.iter (fun f -> f stats) (stats_for "adaptive");
      (* Observations fold strictly in round order — with the epoch's
         schedule fixed, each round's (result, consumed) pair is a pure
         function of its index, so the fold (and hence every re-solve
         decision) is identical whichever domains computed the rounds.
         Each round is folded exactly once, plan swap or not. *)
      Array.iteri
        (fun i (r, consumed) ->
          results.(first + i) <- r;
          est := Estimator.observe !est ~consumed)
        batch;
      Metrics.incr ~by:chunk m_observations;
      start := !start + chunk;
      if !start < rounds then begin
        incr checks;
        Metrics.incr m_checks;
        Array.iteri
          (fun i e -> Metrics.observe m_estimate_ratio (e /. Float.max initial.(i) 1e-12))
          (Estimator.estimates !est);
        let est', decision = Estimator.decide !est in
        est := est';
        match decision with
        | Estimator.Keep -> ()
        | Estimator.Exhausted ->
          incr events; incr exhausted;
          Metrics.incr m_drift_events; Metrics.incr m_exhausted
        | Estimator.Resolve acecs -> (
          incr events;
          Metrics.incr m_drift_events;
          let plan' = Estimator.plan_with_acecs plan ~acecs in
          let t0 = Unix.gettimeofday () in
          (* Structurally identical plan: this takes the solve_warm
             continuation — a single descent, jobs-independent. *)
          match
            Solver.resolve_incremental ~jobs:1 ~structure:config.structure
              ~mode:Lepts_core.Objective.Average ~prev:!current ~plan:plan'
              ~power ()
          with
          | Ok (sched', _) ->
            Metrics.observe m_resolve_seconds (Unix.gettimeofday () -. t0);
            current := sched';
            est := Estimator.committed !est ~acecs;
            incr resolves;
            Metrics.incr m_resolves
          | Error _ ->
            (* Keep the last good schedule; the estimator state is
               untouched, so the next check may retry. *)
            incr failures;
            Metrics.incr m_resolve_failures)
      end
    done;
    let summary = Runner.summarize results in
    Runner.record_metrics summary;
    ( summary,
      { drift_checks = !checks; drift_events = !events; resolves = !resolves;
        resolve_failures = !failures; exhausted = !exhausted },
      !est )
  in
  let improvement_pct =
    if static_summary.Runner.mean_energy = 0. then 0.
    else
      (static_summary.Runner.mean_energy -. adaptive_summary.Runner.mean_energy)
      /. static_summary.Runner.mean_energy *. 100.
  in
  { label; static_summary; adaptive_summary; counters = counters;
    estimates = Estimator.estimates est_final; initial;
    final_drift = Estimator.drift est_final; improvement_pct }

let sweep ?rounds ?jobs ?config ?on_stats ~spec ~schedule ~policy ~seed () =
  List.map
    (fun (label, dist) ->
      run ?rounds ?jobs ~dist ?config ~label ?on_stats ~spec ~schedule ~policy
        ~seed ())
    [ ("truncated normal", Sampler.Truncated_normal);
      ("uniform", Sampler.Uniform);
      ("bimodal 0.1", Sampler.Bimodal { p_large = 0.1 }) ]

let to_table points =
  let t =
    Table.create
      ~header:
        [ "distribution"; "static mean"; "adaptive mean"; "improvement";
          "static p95"; "adaptive p95"; "misses s/a"; "resolves"; "drifts";
          "exhausted" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [ p.label;
          Table.float_cell p.static_summary.Runner.mean_energy;
          Table.float_cell p.adaptive_summary.Runner.mean_energy;
          Printf.sprintf "%.1f %%" p.improvement_pct;
          Table.float_cell p.static_summary.Runner.p95_energy;
          Table.float_cell p.adaptive_summary.Runner.p95_energy;
          Printf.sprintf "%d/%d" p.static_summary.Runner.deadline_misses
            p.adaptive_summary.Runner.deadline_misses;
          string_of_int p.counters.resolves;
          string_of_int p.counters.drift_events;
          string_of_int p.counters.exhausted ])
    points;
  t
