(** Overrun containment: a runtime guard wrapping any online policy.

    The online greedy policy stretches each sub-instance's remaining
    {e budgeted} quota to its static end-time. When an instance's
    actual work exceeds its WCEC budget (a fault — see
    {!Fault_injector}), that stretching is exactly wrong: the instance
    burns its slack at low speed and then dumps unbudgeted overflow
    work on the tail of the schedule, pushing itself and
    lower-priority tasks past their deadlines.

    The containment control hook watches every dispatch of the wrapped
    policy (it receives the policy's own voltage choice as
    [d_base_voltage]) and intervenes in two places:

    - {e escalation}: as soon as an instance's remaining work exceeds
      its remaining budget — an overrun is then inevitable — dispatches
      run at [v_max] instead of the policy voltage;
    - {e shedding} (optional): once an overrunning instance is also
      {e hopeless} — its remaining work cannot finish by the deadline
      even at maximum speed — drop the residue instead of executing
      it, so a misbehaving task cannot steal processor time reserved
      for well-behaved ones. In a frame-based system a post-deadline
      result is worthless anyway. A shed instance never completes and
      is counted as a deadline miss, but its damage is contained.

    Interventions are recorded in per-fault-class {!counters}. *)

type config = {
  shed : bool;
      (** drop an overrunning instance's residual work once it cannot
          meet its deadline even at [v_max] *)
  escalate_early : bool;
      (** run at [v_max] as soon as an overrun becomes inevitable *)
}

val default_config : config
(** [{ shed = true; escalate_early = true }] *)

type counters = {
  mutable escalated_dispatches : int;  (** dispatches forced to [v_max] *)
  mutable escalated_instances : int;  (** distinct instances escalated *)
  mutable shed_instances : int;  (** instances whose residue was dropped *)
}

val fresh_counters : unit -> counters

val add_counters : into:counters -> counters -> unit
(** [add_counters ~into c] accumulates [c] into [into] — used to merge
    per-round counters in round order after a parallel campaign. *)

val control :
  ?config:config ->
  ?epoch:(unit -> int) ->
  power:Lepts_power.Model.t ->
  counters:counters ->
  unit ->
  Lepts_sim.Event_sim.dispatch ->
  Lepts_sim.Event_sim.action
(** [control ~power ~counters ()] builds a control hook for
    {!Lepts_sim.Event_sim.run} / {!Lepts_sim.Runner.simulate}. The hook
    is stateful (it deduplicates per-instance escalation counts); build
    a fresh one per simulation campaign arm. [epoch] should return the
    current simulation round when the hook is reused across rounds, so
    the per-instance dedup resets each round (default: constant 0). *)

val pp_config : Format.formatter -> config -> unit
