(** Fault-injection campaigns: quantify how a schedule degrades under
    model violations, with and without runtime containment.

    A campaign runs three arms over the same workload draws and (for
    the faulty arms) the same deterministic fault scenarios:

    + {e fault-free} — the reference behaviour;
    + {e faults} — the unprotected online policy under injected faults;
    + {e faults + containment} — the same policy wrapped by
      {!Containment.control}.

    All three share the simulation seed, so differences between arms
    are attributable to the faults and the containment response
    alone. *)

type arm = {
  label : string;
  summary : Lepts_sim.Runner.summary;
  faults : Fault_injector.counters;  (** faults injected in this arm *)
  containment : Containment.counters option;
      (** containment interventions; [None] for the unprotected arm *)
}

type report = {
  clean : Lepts_sim.Runner.summary;
  faulty : arm;
  contained : arm;
  spec : Fault_injector.spec;
  rounds : int;
}

val run :
  ?rounds:int ->
  ?jobs:int ->
  ?on_stats:(label:string -> Lepts_par.Pool.stats -> unit) ->
  ?dist:Lepts_sim.Sampler.distribution ->
  ?containment:Containment.config ->
  ?checkpoint:Checkpoint.session ->
  ?should_stop:(unit -> bool) ->
  spec:Fault_injector.spec ->
  schedule:Lepts_core.Static_schedule.t ->
  policy:Lepts_dvs.Policy.t ->
  seed:int ->
  unit ->
  report
(** [run ~spec ~schedule ~policy ~seed ()] simulates [rounds] (default
    500) hyper-periods per arm. Deterministic in (spec, seed, rounds,
    dist) — and in [jobs] (default 1): every round owns its generator
    ({!Lepts_sim.Runner.round_rng}), fault counters and containment
    hook, and per-round outcomes and counters are reduced in round
    order, so the report is bit-identical whatever the domain count.
    [on_stats] receives one throughput/utilization report per arm (per
    chunk when checkpointing).

    [checkpoint] makes the campaign crash-safe: per-round results and
    counters of each arm land in the session (sections ["clean"],
    ["faults"], ["contained"]) as chunks complete, and a resumed run
    reuses every round on disk — the final report is bit-identical to
    an uninterrupted run's. [should_stop] is the graceful-drain hook:
    polled between chunks; when it fires the campaign saves and raises
    {!Checkpoint.Drained}. *)

val to_table : report -> Lepts_util.Table.t
(** Robustness report: one row per arm with miss / shed / escalation
    counts, per-class injected-fault counts and energy mean, p95 and
    p99. *)
