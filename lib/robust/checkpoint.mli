(** Crash-safe checkpointing for long-running campaigns and sweeps.

    A checkpoint is a versioned, checksummed snapshot of the completed
    work units of a run — simulation rounds, Fig 6 sets, sweep points —
    written with atomic write-rename so a [kill -9] at any instant
    leaves either the previous snapshot or the new one on disk, never a
    torn file. Because every work unit in this repository is a pure
    function of (run parameters, unit index) — the PR-2 counter-keyed
    RNG streams make per-round draws order-independent — resuming from
    a checkpoint and recomputing only the missing units reproduces the
    uninterrupted run {e bit-identically} (asserted by the test suite
    and by the CI crash-recovery job).

    {2 File format (version [lepts-checkpoint/1])}

    Line-oriented text:
    {v
    lepts-checkpoint/1
    fingerprint <hex64>
    entry <section> <key> <field>...
    ...
    checksum <hex64>
    v}

    [fingerprint] is an FNV-1a hash of the run parameters (command,
    seeds, spec, a hash of the schedule being simulated, ...) — never
    of [jobs], which cannot affect results. Loading refuses a file
    whose fingerprint differs from the resuming run's: resuming a
    campaign with different parameters would silently splice two
    incompatible result streams. [checksum] is an FNV-1a hash of every
    preceding byte; a mismatch (torn write on a non-POSIX filesystem,
    manual edit) refuses to load. Floats are stored as the hex of their
    IEEE-754 bits ({!float_field}), so the round-trip is exact. *)

(** Shared on-disk framing for snapshot files: the checkpoint store
    below and the serve-layer schedule cache ([Lepts_serve.Cache])
    both persist through it.

    {v
    <magic>/<version>
    fingerprint <hex64>
    <body line>
    ...
    checksum <hex64>
    v}

    Every validation failure names the check that tripped — [magic],
    [version], [checksum] or [fingerprint] — so an operator can tell a
    torn write (checksum) from a wrong artifact (magic/fingerprint)
    from a format skew (version) without opening the file. *)
module Snapshot : sig
  val render :
    magic:string -> version:int -> fingerprint:string -> body:string list -> string
  (** Serialise a snapshot. [body] lines must not contain newlines. *)

  val write : path:string -> string -> unit
  (** Write-to-temp + [rename] (atomic on POSIX): a crash at any
      instant leaves the previous snapshot or the new one, never a
      torn file. *)

  val parse :
    path:string ->
    magic:string ->
    version:int ->
    string ->
    (string * string list, string) result
  (** [parse ~path ~magic ~version contents] validates the framing and
      returns [(fingerprint, body lines)]. Errors are
      ["<path>: <check> check failed: ..."] where [<check>] is one of
      [magic], [version], [checksum], [fingerprint]. *)

  val read :
    path:string ->
    magic:string ->
    version:int ->
    (string * string list, string) result
  (** {!parse} applied to the file at [path]. *)

  val mismatch : path:string -> file_fp:string -> run_fp:string -> string
  (** The canonical fingerprint-check-failed message, naming both
      fingerprints. *)
end

type session
(** An open checkpoint: the in-memory entry store plus the path it
    persists to. Not domain-safe — drive it from the coordinating
    domain only (the pool workers of {!map_indices} never touch it). *)

exception Drained
(** Raised by {!map_indices} after saving when [should_stop] reports a
    drain request: completed chunks are on disk, the run can be resumed
    later. The CLI maps this to exit code 3. *)

val fingerprint : parts:string list -> string
(** Canonical fingerprint of a parameter list: FNV-1a over the parts
    joined with ['\n']. Order matters; include every parameter that
    changes results and nothing (like [jobs]) that does not. *)

val hash_floats : float array -> string
(** Exact content hash of a float array (FNV-1a over the IEEE-754
    bits) — used to pin the schedule a campaign simulates into the
    fingerprint. *)

val start :
  path:string -> resume:bool -> fingerprint:string -> (session, string) result
(** Open the checkpoint at [path].

    - File absent: a fresh session when [resume = false]; an error when
      [resume = true] (nothing to resume).
    - File present (either mode): load it. A version, checksum or parse
      failure is an error (a corrupt checkpoint is never silently
      discarded); a fingerprint mismatch is an error naming both
      fingerprints (the run parameters differ from the ones that wrote
      the file). *)

val entries : session -> section:string -> int
(** Completed units recorded under [section]. *)

val save : session -> unit
(** Serialise the store to [path] via write-to-temp + rename (atomic on
    POSIX). Entries are written sorted by (section, key), so equal
    stores produce byte-identical files. *)

val map_indices :
  ?session:session ->
  ?chunk:int ->
  ?should_stop:(unit -> bool) ->
  ?on_stats:(Lepts_par.Pool.stats -> unit) ->
  section:string ->
  encode:('a -> string list) ->
  decode:(string list -> 'a) ->
  jobs:int ->
  n:int ->
  f:(int -> 'a) ->
  unit ->
  'a array
(** [map_indices ~section ~encode ~decode ~jobs ~n ~f ()] computes
    [Array.init n f] with up to [jobs] domains
    ({!Lepts_par.Pool.run}), reusing every unit already recorded in the
    session and persisting newly computed units as it goes:

    - cached units are decoded from the store and {e not} recomputed
      (counted in [lepts_checkpoint_entries_resumed_total]);
    - missing units are computed in index order, [chunk] (default 50)
      at a time; after each chunk the session is saved
      ([lepts_checkpoint_saves_total]), bounding the work a crash can
      lose to one chunk;
    - between chunks, [should_stop] is polled (a SIGTERM/SIGINT drain
      flag — see {!Lepts_serve.Drain}); when it fires the session is
      saved and {!Drained} is raised;
    - the returned array is in index order and bit-identical whatever
      mix of cached and computed units produced it, for every [jobs].

    Without a [session] this degrades to a single [Pool.run] (plus the
    [should_stop] poll). [on_stats] receives the pool report of each
    chunk that actually computed something. [encode]d fields must be
    non-empty, whitespace-free tokens; [decode] may raise [Failure] on
    malformed fields (surfaced to the caller — only possible if the
    checkpoint passed its checksum yet holds fields of the wrong
    shape, i.e. a section collision between different runs). *)

val float_field : float -> string
(** Exact text encoding: lowercase hex of [Int64.bits_of_float]. *)

val float_of_field : string -> float
(** Inverse of {!float_field}; raises [Failure] on malformed input. *)

val round_result_fields : Lepts_sim.Runner.round_result -> string list
(** Codec for one simulation round — shared by the campaign and
    experiment checkpoints. *)

val round_result_of_fields : string list -> Lepts_sim.Runner.round_result
