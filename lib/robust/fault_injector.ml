module Plan = Lepts_preempt.Plan
module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set
module Rng = Lepts_prng.Xoshiro256
module Event_sim = Lepts_sim.Event_sim

type spec = {
  seed : int;
  overrun_prob : float;
  overrun_factor : float;
  jitter_prob : float;
  jitter_frac : float;
  denial_prob : float;
}

let zero =
  { seed = 2005; overrun_prob = 0.; overrun_factor = 1.5; jitter_prob = 0.;
    jitter_frac = 0.; denial_prob = 0. }

let is_zero spec =
  spec.overrun_prob <= 0. && spec.jitter_prob <= 0. && spec.denial_prob <= 0.

(* Per-field validation with the offending value in the message, and
   written so that NaN fails every check: a negated [>=]-conjunction
   rejects NaN, where the naive [p < 0. || p > 1.] would let it
   through and poison every downstream draw. *)
let validate spec =
  let reject field value rule =
    invalid_arg
      (Printf.sprintf "Fault_injector: %s = %s must be %s" field
         (string_of_float value) rule)
  in
  let prob field p =
    if not (p >= 0. && p <= 1.) then reject field p "in [0, 1]"
  in
  prob "overrun_prob" spec.overrun_prob;
  prob "jitter_prob" spec.jitter_prob;
  prob "denial_prob" spec.denial_prob;
  if not (Float.is_finite spec.overrun_factor && spec.overrun_factor >= 1.) then
    reject "overrun_factor" spec.overrun_factor "finite and >= 1";
  if not (spec.jitter_frac >= 0. && spec.jitter_frac < 1.) then
    reject "jitter_frac" spec.jitter_frac "in [0, 1)"

let pp_spec ppf s =
  Format.fprintf ppf
    "seed=%d overrun=%g@@x%g jitter=%g@@%g denial=%g" s.seed s.overrun_prob
    s.overrun_factor s.jitter_prob s.jitter_frac s.denial_prob

type counters = {
  mutable overruns : int;
  mutable jitters : int;
  mutable denials : int;
}

let fresh_counters () = { overruns = 0; jitters = 0; denials = 0 }

let add_counters ~into c =
  into.overruns <- into.overruns + c.overruns;
  into.jitters <- into.jitters + c.jitters;
  into.denials <- into.denials + c.denials

type event =
  | Overrun of { task : int; instance : int; actual : float; wcec : float }
  | Jitter of { task : int; instance : int; delay : float }
  | Denial of { task : int; instance : int; sub : int; time : float; requested : float }

let pp_event ppf = function
  | Overrun { task; instance; actual; wcec } ->
    Format.fprintf ppf "overrun T%d.%d: %g > wcec %g" (task + 1) (instance + 1)
      actual wcec
  | Jitter { task; instance; delay } ->
    Format.fprintf ppf "jitter T%d.%d: +%g" (task + 1) (instance + 1) delay
  | Denial { task; instance; sub; time; requested } ->
    Format.fprintf ppf "denial T%d.%d sub %d at t=%g (wanted %.3g V)" (task + 1)
      (instance + 1) sub time requested

type scenario = {
  totals : float array array;
  faults : Event_sim.faults;
  events : event list ref;
}

let trace scenario = List.rev !(scenario.events)

(* All randomness flows through one generator seeded from
   [spec.seed + round] (SplitMix64 expansion makes consecutive integer
   seeds independent streams): upfront per-instance overrun and jitter
   draws in task/instance order, then a split stream for the per-
   dispatch denial decisions. The simulator's dispatch sequence is
   itself deterministic, so the whole fault trace is a pure function of
   (spec, round, totals). *)
let perturb spec ?counters ~round (plan : Plan.t) ~totals =
  validate spec;
  let rng = Rng.create ~seed:(spec.seed + round) in
  let c = match counters with Some c -> c | None -> fresh_counters () in
  let events = ref [] in
  let ts = plan.Plan.task_set in
  let totals' = Array.map Array.copy totals in
  let offsets = Array.map (Array.map (fun _ -> 0.)) totals in
  Array.iteri
    (fun i per_instance ->
      let task = Task_set.task ts i in
      Array.iteri
        (fun j _ ->
          if spec.overrun_prob > 0. && Rng.float rng < spec.overrun_prob then begin
            let actual = task.Task.wcec *. spec.overrun_factor in
            totals'.(i).(j) <- actual;
            c.overruns <- c.overruns + 1;
            events :=
              Overrun { task = i; instance = j; actual; wcec = task.Task.wcec }
              :: !events
          end;
          if spec.jitter_prob > 0. && Rng.float rng < spec.jitter_prob then begin
            let hi = spec.jitter_frac *. float_of_int task.Task.period in
            let delay = Rng.uniform rng ~lo:0. ~hi in
            offsets.(i).(j) <- delay;
            c.jitters <- c.jitters + 1;
            events := Jitter { task = i; instance = j; delay } :: !events
          end)
        per_instance)
    totals;
  let denial_rng = Rng.split rng in
  let deny_transition ~task ~instance ~sub ~now ~requested =
    if spec.denial_prob <= 0. then false
    else if Rng.float denial_rng < spec.denial_prob then begin
      c.denials <- c.denials + 1;
      events := Denial { task; instance; sub; time = now; requested } :: !events;
      true
    end
    else false
  in
  { totals = totals';
    faults =
      { Event_sim.release_offsets = offsets;
        enforce_budget = spec.overrun_prob <= 0.;
        deny_transition };
    events }
