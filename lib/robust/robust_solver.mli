(** Resilient solve pipeline: structured fallback ACS → WCS → RM.

    The scheduling NLP is non-convex; {!Lepts_core.Solver} already runs
    multiple starts, but a production pipeline must also survive the
    case where {e every} start stalls, exceeds its budget, or trips a
    non-finite guard. This module arranges a structured fallback chain:

    + {b ACS} — the paper's average-case-aware schedule, under the
      configured iteration/wall budget;
    + {b WCS} — the worst-case baseline (a better-conditioned NLP),
      under its own budget;
    + {b RM at v_max} — the canonical worst-case rate-monotonic
      schedule at maximum speed ({!Lepts_core.Solver.initial_point}).
      No optimisation is involved, so this stage cannot stall; it fails
      only when the task set is unschedulable outright.

    Every candidate is re-checked with the independent
    {!Lepts_core.Validate.check} before being accepted, and the
    returned {!diagnostics} record which stages failed and why —
    replacing the former drop-errors-on-the-floor behaviour. *)

type budget = {
  max_outer : int;  (** augmented-Lagrangian outer iterations; <= 0
                        fails the stage before it starts *)
  max_inner : int;  (** projected-gradient inner iterations per outer *)
  wall_budget : float option;  (** CPU-seconds cap for the stage *)
}

val default_budget : budget
(** The solver defaults: 30 outer, 2000 inner, no wall cap. *)

type config = { acs : budget; wcs : budget }

val default_config : config

type stage = Acs | Wcs | Rm_vmax

val stage_name : stage -> string

type diagnostics = {
  attempts : (stage * string) list;
      (** failed stages in attempt order, with the failure reason *)
  chosen : stage;  (** the stage that produced the returned schedule *)
  stats : Lepts_core.Solver.stats option;
      (** NLP statistics; [None] for the [Rm_vmax] fallback *)
}

val solve :
  ?config:config ->
  ?skip_acs:bool ->
  ?prev:Lepts_core.Static_schedule.t ->
  ?structure:Lepts_core.Solver.structure ->
  ?telemetry:Lepts_obs.Telemetry.collector ->
  plan:Lepts_preempt.Plan.t ->
  power:Lepts_power.Model.t ->
  unit ->
  (Lepts_core.Static_schedule.t * diagnostics, Lepts_core.Solver.error) result
(** [solve ~plan ~power ()] walks the fallback chain and returns the
    first candidate that passes {!Lepts_core.Validate.check}, together
    with diagnostics naming any stages that failed. [Error] means the
    whole chain failed — [Unschedulable] when any stage reported the
    task set unschedulable, otherwise [Solver_stalled] carrying every
    stage's failure reason.

    [structure] selects the solver kernels for the ACS and WCS stages
    ({!Lepts_core.Solver.structure}; default [Fast]). The RM fallback
    involves no optimisation, so the knob does not reach it.

    [skip_acs] (default [false]) starts the chain at WCS — the route a
    {!Lepts_serve.Breaker} takes while its circuit is open. The skip is
    recorded in [diagnostics.attempts] as
    [(Acs, "skipped (circuit open)")] and counted in
    [lepts_pipeline_acs_skipped_total].

    [prev] (default: none) seeds the ACS stage with a previously solved
    schedule via {!Lepts_core.Solver.resolve_incremental}: when the
    plan is structurally compatible with [prev]'s the stage runs the
    warm continuation (never worse than its seed), otherwise the
    incremental path itself falls back to a cold solve. The serve
    layer's warm chains (near-identical requests in one wave) pass it;
    the fallback stages never see it.

    When a failing NLP stage had a wall budget and it is spent, the
    failure reason in [diagnostics.attempts] (and in the
    [Solver_stalled] chain) carries a
    ["[<stage> wall budget expired: <elapsed>s elapsed of <budget>s
    budget]"] suffix, and [lepts_pipeline_budget_expired_total{stage}]
    is bumped — so a multi-stage report never loses which stage timed
    out, or by how much.

    Observability: every stage attempt, failure, win and degradation
    (a win by any stage below ACS) is counted in
    {!Lepts_obs.Metrics.default} under [lepts_pipeline_*] with a
    [stage] label, and each stage runs under a
    [pipeline:<stage>] {!Lepts_obs.Span} when spans are enabled.
    [telemetry] registers one convergence sink per NLP stage actually
    attempted (labels [pipeline:acs] / [pipeline:wcs]). *)

val pp_diagnostics : Format.formatter -> diagnostics -> unit
