module Solver = Lepts_core.Solver
module Validate = Lepts_core.Validate
module Static_schedule = Lepts_core.Static_schedule
module Metrics = Lepts_obs.Metrics
module Span = Lepts_obs.Span
module Telemetry = Lepts_obs.Telemetry

let log_src = Logs.Src.create "lepts.robust.solver" ~doc:"resilient solve pipeline"

module Log = (val Logs.src_log log_src : Logs.LOG)

type budget = { max_outer : int; max_inner : int; wall_budget : float option }

let default_budget = { max_outer = 30; max_inner = 2000; wall_budget = None }

type config = { acs : budget; wcs : budget }

let default_config = { acs = default_budget; wcs = default_budget }

type stage = Acs | Wcs | Rm_vmax

let stage_name = function Acs -> "acs" | Wcs -> "wcs" | Rm_vmax -> "rm-vmax"

(* Pipeline health counters in the default registry (DESIGN.md §9).
   Registering all (stage) label combinations at module load keeps the
   full matrix visible — a report showing zero degradations is evidence
   of health, an absent series is not. *)
let m_attempts =
  let make stage =
    Metrics.counter ~help:"pipeline stage attempts"
      ~labels:[ ("stage", stage_name stage) ]
      Metrics.default "lepts_pipeline_attempts_total"
  in
  fun stage -> make stage

let m_failures stage =
  Metrics.counter ~help:"pipeline stage failures"
    ~labels:[ ("stage", stage_name stage) ]
    Metrics.default "lepts_pipeline_failures_total"

let m_chosen stage =
  Metrics.counter ~help:"pipeline solves won by this stage"
    ~labels:[ ("stage", stage_name stage) ]
    Metrics.default "lepts_pipeline_chosen_total"

let m_degradations =
  Metrics.counter
    ~help:"pipeline solves that fell back below ACS (degraded schedule)"
    Metrics.default "lepts_pipeline_degradations_total"

let m_budget_expired stage =
  Metrics.counter
    ~help:"pipeline stage failures with the stage's wall budget expired"
    ~labels:[ ("stage", stage_name stage) ]
    Metrics.default "lepts_pipeline_budget_expired_total"

let m_skipped =
  Metrics.counter
    ~help:"pipeline solves that skipped the ACS stage (circuit open)"
    Metrics.default "lepts_pipeline_acs_skipped_total"

let () =
  (* Pre-register the whole label matrix. *)
  List.iter
    (fun stage ->
      ignore (m_attempts stage);
      ignore (m_failures stage);
      ignore (m_chosen stage))
    [ Acs; Wcs; Rm_vmax ];
  (* Only the NLP stages take a wall budget. *)
  List.iter (fun stage -> ignore (m_budget_expired stage)) [ Acs; Wcs ];
  ignore m_degradations;
  ignore m_skipped

type diagnostics = {
  attempts : (stage * string) list;
  chosen : stage;
  stats : Lepts_core.Solver.stats option;
}

let pp_diagnostics ppf d =
  Format.fprintf ppf "schedule from %s" (stage_name d.chosen);
  List.iter
    (fun (stage, why) ->
      Format.fprintf ppf "@.  %s failed: %s" (stage_name stage) why)
    d.attempts

let error_string e = Format.asprintf "%a" Solver.pp_error e

let violations_string vs =
  String.concat "; " (List.map (Format.asprintf "%a" Validate.pp_violation) vs)

(* Re-check every candidate with the independent validator: a solver
   bug must surface as a fallback, never as an infeasible schedule
   handed to the runtime. *)
let validated (schedule, stats) =
  match Validate.check schedule with
  | Ok () -> Ok (schedule, Some stats)
  | Error vs ->
    Error (Printf.sprintf "solution failed validation (%s)" (violations_string vs))

let attempt_nlp ~budget ~solve =
  if budget.max_outer <= 0 || budget.max_inner <= 0 then
    Error "iteration budget exhausted before start"
  else
    match
      solve ?wall_budget:budget.wall_budget ~max_outer:budget.max_outer
        ~max_inner:budget.max_inner ()
    with
    | Error e -> Error (error_string e)
    | Ok pair -> validated pair

(* The canonical feasible point: worst-case rate-monotonic execution at
   maximum speed. No optimisation involved, so it cannot stall — it
   fails only when the task set is unschedulable outright. *)
let attempt_rm ~plan ~power =
  match Solver.initial_point ~plan ~power with
  | Error e -> Error (error_string e)
  | Ok (e0, q0) -> (
    let schedule = Static_schedule.create ~plan ~power ~end_times:e0 ~quotas:q0 in
    match Validate.check schedule with
    | Ok () -> Ok (schedule, None)
    | Error vs ->
      Error
        (Printf.sprintf "canonical RM schedule failed validation (%s)"
           (violations_string vs)))

let solve ?(config = default_config) ?(skip_acs = false) ?prev ?structure
    ?telemetry ~plan ~power () =
  let failures = ref [] in
  let run ?budget stage attempt =
    Metrics.incr (m_attempts stage);
    let t0 = Unix.gettimeofday () in
    match Span.with_ ~name:("pipeline:" ^ stage_name stage) attempt with
    | Ok (schedule, stats) ->
      Log.debug (fun f -> f "%s succeeded" (stage_name stage));
      Metrics.incr (m_chosen stage);
      (* Anything below ACS is a degraded (still safe) schedule. *)
      if stage <> Acs then Metrics.incr m_degradations;
      Some
        (schedule, { attempts = List.rev !failures; chosen = stage; stats })
    | Error why ->
      (* When the failing stage had a wall budget and it is spent, say
         so in the diagnostic itself: the last-error report of a
         multi-stage solve must not lose which stage timed out, or how
         far over budget it ran. *)
      let why =
        match budget with
        | Some { wall_budget = Some b; _ } ->
          let elapsed = Unix.gettimeofday () -. t0 in
          if elapsed >= b then begin
            Metrics.incr (m_budget_expired stage);
            Printf.sprintf
              "%s [%s wall budget expired: %.3fs elapsed of %.3fs budget]" why
              (stage_name stage) elapsed b
          end
          else why
        | Some { wall_budget = None; _ } | None -> why
      in
      Log.info (fun f -> f "%s failed: %s" (stage_name stage) why);
      Metrics.incr (m_failures stage);
      failures := (stage, why) :: !failures;
      None
  in
  (* A fresh sink per attempted NLP stage, registered only when the
     stage actually runs so collectors are not polluted by skipped
     fallbacks. [register] returns [None] on a full collector. *)
  let sink label =
    match telemetry with
    | None -> None
    | Some collector -> Telemetry.register collector ~label
  in
  let ( <|>? ) previous (stage, budget, attempt) =
    match previous with
    | Some _ -> previous
    | None -> run ?budget stage attempt
  in
  let acs_result =
    if skip_acs then begin
      (* Circuit-open routing ({!Lepts_serve.Breaker}): go straight to
         the fallback chain without burning an ACS attempt. Recorded in
         the diagnostics so a degraded schedule still says why. *)
      Metrics.incr m_skipped;
      failures := (Acs, "skipped (circuit open)") :: !failures;
      None
    end
    else
      run ~budget:config.acs Acs (fun () ->
          attempt_nlp ~budget:config.acs
            ~solve:(fun ?wall_budget ~max_outer ~max_inner () ->
              (* With a previous schedule of the same structure in hand
                 (the serve-layer warm chain), the ACS stage goes
                 through the incremental path: a continuation descent
                 that is never worse than its seed, falling back to the
                 cold multi-start itself when the plans are not
                 compatible. *)
              match prev with
              | Some prev ->
                Solver.resolve_incremental ?wall_budget ?structure
                  ?telemetry:(sink "pipeline:acs") ~max_outer ~max_inner
                  ~mode:Lepts_core.Objective.Average ~prev ~plan ~power ()
              | None ->
                Solver.solve_acs ?wall_budget ?structure
                  ?telemetry:(sink "pipeline:acs") ~max_outer ~max_inner ~plan
                  ~power ()))
  in
  let result =
    acs_result
    <|>? ( Wcs,
           Some config.wcs,
           fun () ->
             attempt_nlp ~budget:config.wcs
               ~solve:(fun ?wall_budget ~max_outer ~max_inner () ->
                 Solver.solve_wcs ?wall_budget ?structure
                   ?telemetry:(sink "pipeline:wcs") ~max_outer ~max_inner
                   ~plan ~power ()) )
    <|>? (Rm_vmax, None, fun () -> attempt_rm ~plan ~power)
  in
  match result with
  | Some ok -> Ok ok
  | None ->
    (* Even the canonical RM point failed: either truly unschedulable,
       or every stage stalled — report the full chain. The budget
       annotation appends to the message, so match on the prefix. *)
    let unschedulable =
      let u = error_string Solver.Unschedulable in
      List.exists
        (fun (_, why) -> String.length why >= String.length u
                         && String.sub why 0 (String.length u) = u)
        !failures
    in
    if unschedulable then Error Solver.Unschedulable
    else
      Error
        (Solver.Solver_stalled
           (String.concat "; "
              (List.rev_map
                 (fun (stage, why) -> stage_name stage ^ ": " ^ why)
                 !failures)))
