(** Seeded, deterministic fault injection for simulation scenarios.

    The paper's ACS guarantee — "deadlines hold if every task takes its
    WCEC" — leans on assumptions a real DVS platform violates: WCEC
    estimates drift (Berten et al., arXiv:0809.1132), releases jitter,
    and voltage-transition requests can be denied or applied late. This
    module perturbs a sampled workload scenario with three fault
    classes so those violations can be studied reproducibly:

    - {e WCEC overruns}: an instance's actual cycles exceed its
      budgeted WCEC by [overrun_factor], with probability
      [overrun_prob] per instance; budget enforcement in the simulator
      is disabled so the excess actually executes;
    - {e release jitter}: an instance's arrival is delayed by a uniform
      draw from [[0, jitter_frac * period]], with probability
      [jitter_prob];
    - {e voltage-transition faults}: each dispatch requesting a voltage
      change is denied with probability [denial_prob] — the processor
      stays at the previous level for that dispatch.

    Everything is driven by one generator seeded from
    [seed + round], so a fixed (spec, round, workload) triple yields an
    identical fault trace and simulation outcome on every run. *)

type spec = {
  seed : int;
  overrun_prob : float;  (** per-instance overrun probability, in [0,1] *)
  overrun_factor : float;  (** actual = factor * WCEC on overrun; >= 1 *)
  jitter_prob : float;  (** per-instance jitter probability, in [0,1] *)
  jitter_frac : float;  (** max delay as a fraction of the period, in [0,1) *)
  denial_prob : float;  (** per-dispatch transition-denial probability *)
}

val zero : spec
(** All fault rates zero (seed 2005): {!perturb} then returns the
    workloads unchanged and a scenario whose simulation is bit-identical
    to a fault-free run. *)

val is_zero : spec -> bool

type counters = {
  mutable overruns : int;
  mutable jitters : int;
  mutable denials : int;
}
(** Per-fault-class injection counts, accumulated across {!perturb}
    calls that share the record (denials are counted as the simulator
    consults the scenario). *)

val fresh_counters : unit -> counters

val add_counters : into:counters -> counters -> unit
(** [add_counters ~into c] accumulates [c] into [into] — used to merge
    per-round counters in round order after a parallel campaign. *)

type event =
  | Overrun of { task : int; instance : int; actual : float; wcec : float }
  | Jitter of { task : int; instance : int; delay : float }
  | Denial of { task : int; instance : int; sub : int; time : float; requested : float }

type scenario = {
  totals : float array array;  (** perturbed per-instance workloads *)
  faults : Lepts_sim.Event_sim.faults;  (** hand to {!Lepts_sim.Event_sim.run} *)
  events : event list ref;
      (** fault log; overrun/jitter events are recorded up front,
          denial events as the simulation consults the scenario *)
}

val perturb :
  spec ->
  ?counters:counters ->
  round:int ->
  Lepts_preempt.Plan.t ->
  totals:float array array ->
  scenario
(** [perturb spec ~round plan ~totals] draws one fault scenario for the
    given hyper-period round. Deterministic in (spec, round, totals).
    Raises [Invalid_argument] on out-of-range spec fields. *)

val trace : scenario -> event list
(** The fault log in injection order (call after simulating to include
    denial events). *)

val validate : spec -> unit
(** Per-field range checks. Raises [Invalid_argument] naming the
    offending field and its value — probabilities must lie in
    [[0, 1]], [overrun_factor] must be finite and >= 1, [jitter_frac]
    in [[0, 1)]. Every check rejects NaN. *)

val pp_spec : Format.formatter -> spec -> unit
val pp_event : Format.formatter -> event -> unit
