module Pool = Lepts_par.Pool
module Metrics = Lepts_obs.Metrics

let magic = "lepts-checkpoint"
let snapshot_version = 1

exception Drained

(* Resume/save accounting in the default registry: a resumed run is
   visible in the exported metrics (tentpole requirement — every
   recovery action is counted). *)
let m_saves =
  Metrics.counter ~help:"checkpoint snapshots written" Metrics.default
    "lepts_checkpoint_saves_total"

let m_resumed =
  Metrics.counter ~help:"work units reused from a checkpoint instead of recomputed"
    Metrics.default "lepts_checkpoint_entries_resumed_total"

(* --- FNV-1a 64-bit -------------------------------------------------------- *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_byte h b = Int64.mul (Int64.logxor h (Int64.of_int b)) fnv_prime

let fnv_string h s =
  let h = ref h in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) s;
  !h

let hex64 h = Printf.sprintf "%016Lx" h

let fingerprint ~parts = hex64 (fnv_string fnv_offset (String.concat "\n" parts))

(* --- snapshot framing ------------------------------------------------------ *)

module Snapshot = struct
  (* Shared on-disk framing for every snapshot family in the tree
     (checkpoints here, the serve-layer schedule cache): a magic/version
     header, a fingerprint of the parameters that wrote the file, free-
     form body lines, and a checksum trailer covering every preceding
     byte. Each validation failure names the check that tripped —
     magic, version, checksum or fingerprint — because "corrupt file"
     tells an operator nothing about whether they pointed a run at the
     wrong artifact or the disk tore a write. *)

  type check = Magic | Version | Checksum | Fingerprint

  let check_name = function
    | Magic -> "magic"
    | Version -> "version"
    | Checksum -> "checksum"
    | Fingerprint -> "fingerprint"

  let fail ~path check fmt =
    Printf.ksprintf
      (fun m ->
        Error (Printf.sprintf "%s: %s check failed: %s" path (check_name check) m))
      fmt

  let render ~magic ~version ~fingerprint ~body =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf (Printf.sprintf "%s/%d\n" magic version);
    Buffer.add_string buf ("fingerprint " ^ fingerprint ^ "\n");
    List.iter
      (fun line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n')
      body;
    let payload = Buffer.contents buf in
    payload ^ "checksum " ^ hex64 (fnv_string fnv_offset payload) ^ "\n"

  let write ~path contents =
    let tmp = path ^ ".tmp" in
    let oc = open_out tmp in
    output_string oc contents;
    close_out oc;
    Sys.rename tmp path

  let parse ~path ~magic ~version contents =
    let fail check fmt = fail ~path check fmt in
    match String.split_on_char '\n' contents with
    | [] | [ "" ] -> fail Magic "empty file"
    | header :: rest -> (
      let expected = Printf.sprintf "%s/%d" magic version in
      match String.rindex_opt header '/' with
      | None -> fail Magic "missing %S header, found %S" expected header
      | Some slash ->
        let file_magic = String.sub header 0 slash in
        let file_version =
          String.sub header (slash + 1) (String.length header - slash - 1)
        in
        if file_magic <> magic then
          fail Magic "expected a %s snapshot, found %S" magic header
        else if file_version <> string_of_int version then
          fail Version "unsupported version %S (expected %d)" file_version version
        else (
          (* The checksum line covers every byte before it, including
             the trailing newline of the last body line. *)
          match List.rev rest with
          | "" :: checksum_line :: body_rev -> (
            match String.split_on_char ' ' checksum_line with
            | [ "checksum"; given ] -> (
              let payload =
                String.concat "\n" (header :: List.rev body_rev) ^ "\n"
              in
              let computed = hex64 (fnv_string fnv_offset payload) in
              if computed <> given then
                fail Checksum "stored %s, computed %s (file corrupt or truncated)"
                  given computed
              else
                match List.rev body_rev with
                | fp_line :: body -> (
                  match String.split_on_char ' ' fp_line with
                  | [ "fingerprint"; fp ] -> Ok (fp, body)
                  | _ -> fail Fingerprint "missing fingerprint line")
                | [] -> fail Fingerprint "missing fingerprint line")
            | _ -> fail Checksum "missing checksum trailer (file truncated?)")
          | _ -> fail Checksum "missing checksum trailer (file truncated?)"))

  let read ~path ~magic ~version =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    parse ~path ~magic ~version contents

  let mismatch ~path ~file_fp ~run_fp =
    Printf.sprintf
      "%s: fingerprint check failed: snapshot fingerprint %s does not match \
       this run (%s) — the run parameters differ from the ones that wrote it"
      path file_fp run_fp
end

let hash_floats a =
  let h = ref fnv_offset in
  Array.iter
    (fun x ->
      let bits = Int64.bits_of_float x in
      for byte = 0 to 7 do
        h :=
          fnv_byte !h
            (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * byte)) 0xffL))
      done)
    a;
  hex64 !h

(* --- field codecs --------------------------------------------------------- *)

let float_field x = Printf.sprintf "%Lx" (Int64.bits_of_float x)

let float_of_field s =
  match Int64.of_string_opt ("0x" ^ s) with
  | Some bits -> Int64.float_of_bits bits
  | None -> failwith (Printf.sprintf "Checkpoint: malformed float field %S" s)

let int_of_field s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> failwith (Printf.sprintf "Checkpoint: malformed int field %S" s)

let round_result_fields (r : Lepts_sim.Runner.round_result) =
  [ float_field r.Lepts_sim.Runner.energy;
    string_of_int r.Lepts_sim.Runner.misses;
    string_of_int r.Lepts_sim.Runner.shed ]

let round_result_of_fields = function
  | [ energy; misses; shed ] ->
    { Lepts_sim.Runner.energy = float_of_field energy;
      misses = int_of_field misses; shed = int_of_field shed }
  | fields ->
    failwith
      (Printf.sprintf "Checkpoint: round entry has %d fields, expected 3"
         (List.length fields))

(* --- store ---------------------------------------------------------------- *)

type session = {
  path : string;
  fp : string;
  entries : (string * int, string list) Hashtbl.t;
}

let entries t ~section =
  Hashtbl.fold (fun (s, _) _ acc -> if s = section then acc + 1 else acc) t.entries 0

let token_ok s =
  s <> ""
  && String.for_all (fun c -> c <> ' ' && c <> '\n' && c <> '\r' && c <> '\t') s

let render t =
  let sorted =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.entries [])
  in
  let body =
    List.map
      (fun ((section, key), fields) ->
        Printf.sprintf "entry %s %d %s" section key (String.concat " " fields))
      sorted
  in
  Snapshot.render ~magic ~version:snapshot_version ~fingerprint:t.fp ~body

let save t =
  Snapshot.write ~path:t.path (render t);
  Metrics.incr m_saves

let parse_entries ~path body =
  let entries = Hashtbl.create 256 in
  let bad = ref None in
  List.iter
    (fun line ->
      if !bad = None then
        match String.split_on_char ' ' line with
        | "entry" :: section :: key :: fields -> (
          match int_of_string_opt key with
          | Some k -> Hashtbl.replace entries (section, k) fields
          | None -> bad := Some line)
        | _ -> bad := Some line)
    body;
  match !bad with
  | Some line -> Error (Printf.sprintf "%s: malformed line %S" path line)
  | None -> Ok entries

let start ~path ~resume ~fingerprint:fp =
  if not (Sys.file_exists path) then
    if resume then Error (path ^ ": no checkpoint to resume")
    else Ok { path; fp; entries = Hashtbl.create 256 }
  else
    match Snapshot.read ~path ~magic ~version:snapshot_version with
    | Error _ as e -> e
    | Ok (file_fp, body) ->
      if file_fp <> fp then
        Error (Snapshot.mismatch ~path ~file_fp ~run_fp:fp)
      else
        Result.map (fun entries -> { path; fp; entries }) (parse_entries ~path body)

(* --- resumable index driver ----------------------------------------------- *)

let map_indices ?session ?(chunk = 50) ?(should_stop = fun () -> false) ?on_stats
    ~section ~encode ~decode ~jobs ~n ~f () =
  if chunk <= 0 then invalid_arg "Checkpoint.map_indices: chunk must be positive";
  if not (token_ok section) then
    invalid_arg "Checkpoint.map_indices: section must be a whitespace-free token";
  let out = Array.make n None in
  (match session with
  | None -> ()
  | Some t ->
    for i = 0 to n - 1 do
      match Hashtbl.find_opt t.entries (section, i) with
      | None -> ()
      | Some fields ->
        out.(i) <- Some (decode fields);
        Metrics.incr m_resumed
    done);
  let missing = ref [] in
  for i = n - 1 downto 0 do
    if out.(i) = None then missing := i :: !missing
  done;
  let missing = Array.of_list !missing in
  let total = Array.length missing in
  let record lo hi =
    (* Indices [lo, hi) of [missing] just computed: stash in the store
       and snapshot, so a crash loses at most one chunk. *)
    match session with
    | None -> ()
    | Some t ->
      for k = lo to hi - 1 do
        let i = missing.(k) in
        let fields = encode (Option.get out.(i)) in
        if not (List.for_all token_ok fields) then
          invalid_arg "Checkpoint.map_indices: encoded fields must be non-empty tokens";
        Hashtbl.replace t.entries (section, i) fields
      done;
      save t
  in
  let drain () =
    Option.iter save session;
    raise Drained
  in
  if should_stop () && total > 0 then drain ();
  let pos = ref 0 in
  while !pos < total do
    let hi = min total (!pos + if session = None then total else chunk) in
    let lo = !pos in
    let results, stats = Pool.run ~jobs ~n:(hi - lo) ~f:(fun k -> f missing.(lo + k)) in
    Array.iteri (fun k r -> out.(missing.(lo + k)) <- Some r) results;
    Option.iter (fun g -> g stats) on_stats;
    record lo hi;
    pos := hi;
    if should_stop () && !pos < total then drain ()
  done;
  Array.map Option.get out
