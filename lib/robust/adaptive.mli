(** Adaptive-ACS campaign: static schedule vs estimator/re-solve loop.

    The closed loop the paper stops short of
    (doc/ADAPTATION.md): simulate hyper-period rounds under a drifting
    workload (the fault injector's overrun/jitter machinery and/or a
    sampling distribution whose mean sits away from the configured
    ACEC), fold each round's per-task consumed cycles into an
    {!Lepts_sim.Estimator}, and at every epoch boundary (every
    [resolve_every] rounds) re-solve the ACS schedule incrementally
    ({!Lepts_core.Solver.resolve_incremental}, warm-continuation path)
    when the estimate has drifted past the threshold. The {e static}
    arm replays the identical rounds on the offline schedule, so the
    reported energy delta isolates what adaptation buys.

    {2 Determinism}

    Within an epoch the schedule is fixed, so rounds are independent
    and fan out on the domain pool; their observations are then folded
    in round-index order, and re-solves happen only between epochs on
    the caller's domain. Estimator state is pure, the warm
    continuation is a single descent (independent of [jobs]), and both
    arms derive every round's draws from
    [Runner.round_rng ~rng:base ~round] — so a whole
    {!run} is bit-identical for every [-j], which CI gates byte-level
    on [lepts faults --adaptive]. *)

type config = {
  estimator : Lepts_sim.Estimator.config;
  resolve_every : int;
      (** epoch length: drift is checked (and at most one re-solve
          performed) every this many rounds; >= 1 *)
  structure : Lepts_core.Solver.structure;
      (** kernel choice for the re-solves (CLI [--exact-solve]) *)
}

val default_config : config
(** {!Lepts_sim.Estimator.default_config}, [resolve_every = 25],
    [Fast] kernels. *)

type counters = {
  drift_checks : int;  (** epoch boundaries examined *)
  drift_events : int;
      (** checks whose drift exceeded the threshold (armed), whether
          or not a re-solve was still in budget *)
  resolves : int;  (** incremental re-solves performed and committed *)
  resolve_failures : int;
      (** re-solves that returned an error; the previous schedule is
          kept and the loop continues *)
  exhausted : int;
      (** drift events refused because the re-solve budget was spent —
          from there on the run continues on its last committed
          schedule (the static plan when the budget is 0) *)
}

type point = {
  label : string;  (** distribution arm label, e.g. ["bimodal 0.1"] *)
  static_summary : Lepts_sim.Runner.summary;
  adaptive_summary : Lepts_sim.Runner.summary;
  counters : counters;
  estimates : float array;  (** final per-task ACEC estimates *)
  initial : float array;  (** the offline per-task ACECs, for reference *)
  final_drift : float;  (** estimator drift after the last round *)
  improvement_pct : float;
      (** (static - adaptive) / static * 100, mean energy *)
}

val run :
  ?rounds:int ->
  ?jobs:int ->
  ?dist:Lepts_sim.Sampler.distribution ->
  ?config:config ->
  ?label:string ->
  ?on_stats:(label:string -> Lepts_par.Pool.stats -> unit) ->
  spec:Fault_injector.spec ->
  schedule:Lepts_core.Static_schedule.t ->
  policy:Lepts_dvs.Policy.t ->
  seed:int ->
  unit ->
  point
(** One static-vs-adaptive comparison under [dist] (default the
    paper's truncated normal) and [spec]'s faults. [schedule] is the
    offline ACS solution: the static arm runs it unchanged, the
    adaptive arm starts from it. [rounds] defaults to 500, [jobs]
    to 1. Raises [Invalid_argument] on a non-positive [rounds] or
    invalid [config]/[spec]. *)

val sweep :
  ?rounds:int ->
  ?jobs:int ->
  ?config:config ->
  ?on_stats:(label:string -> Lepts_par.Pool.stats -> unit) ->
  spec:Fault_injector.spec ->
  schedule:Lepts_core.Static_schedule.t ->
  policy:Lepts_dvs.Policy.t ->
  seed:int ->
  unit ->
  point list
(** The Fig-6-style drifting-workload sweep behind
    [lepts faults --adaptive]: one {!run} per sampling shape —
    truncated normal (the paper's §4 protocol), uniform, and the
    bimodal "usually small, occasionally large" workload
    ([p_large = 0.1]) whose mean sits far below the configured ACEC.
    All arms share [spec], [seed] and the schedule. *)

val to_table : point list -> Lepts_util.Table.t
(** One row per point: static vs adaptive mean/p95 energy, the
    improvement percentage, deadline misses, and the estimator's
    re-solve/drift counters. *)
