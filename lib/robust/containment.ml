module Event_sim = Lepts_sim.Event_sim
module Model = Lepts_power.Model

type config = { shed : bool; escalate_early : bool }

let default_config = { shed = true; escalate_early = true }

let pp_config ppf c =
  Format.fprintf ppf "shed=%b escalate-early=%b" c.shed c.escalate_early

type counters = {
  mutable escalated_dispatches : int;
  mutable escalated_instances : int;
  mutable shed_instances : int;
}

let fresh_counters () =
  { escalated_dispatches = 0; escalated_instances = 0; shed_instances = 0 }

let add_counters ~into c =
  into.escalated_dispatches <- into.escalated_dispatches + c.escalated_dispatches;
  into.escalated_instances <- into.escalated_instances + c.escalated_instances;
  into.shed_instances <- into.shed_instances + c.shed_instances

let tiny = 1e-9

let control ?(config = default_config) ?(epoch = fun () -> 0) ~power ~counters () =
  let v_max = power.Model.v_max in
  (* Track which instances have already been counted as escalated so
     [escalated_instances] counts instances, not dispatches; the epoch
     (simulation round) is part of the key so dedup resets per round. *)
  let escalated = Hashtbl.create 16 in
  let note_escalation (d : Event_sim.dispatch) =
    counters.escalated_dispatches <- counters.escalated_dispatches + 1;
    let key = (epoch (), d.Event_sim.d_task, d.Event_sim.d_instance) in
    if not (Hashtbl.mem escalated key) then begin
      Hashtbl.add escalated key ();
      counters.escalated_instances <- counters.escalated_instances + 1
    end
  in
  (* The remaining work cannot finish by the deadline even at maximum
     speed: in a frame-based system the result is then worthless, and
     every further cycle spent on it is stolen from well-behaved
     tasks. *)
  let hopeless (d : Event_sim.dispatch) =
    d.Event_sim.d_now
    +. Model.min_duration power ~cycles:d.Event_sim.d_work_remaining
    > d.Event_sim.d_deadline +. tiny
  in
  fun (d : Event_sim.dispatch) ->
    let overrun_inevitable =
      d.Event_sim.d_work_remaining > d.Event_sim.d_budget_remaining +. tiny
    in
    if config.shed && overrun_inevitable && hopeless d then begin
      counters.shed_instances <- counters.shed_instances + 1;
      Event_sim.Shed
    end
    else
      match d.Event_sim.d_sub with
      | None ->
        (* Budget exhausted with work remaining: a confirmed overrun,
           but still winnable — burn the residue at maximum speed. *)
        note_escalation d;
        Event_sim.Run v_max
      | Some _ ->
        if config.escalate_early && overrun_inevitable then begin
          (* More work left than budget: the instance will overrun.
             Stop stretching quotas to their end-times and burn through
             the backlog at maximum speed instead, banking time for the
             overflow (and for lower-priority tasks). *)
          note_escalation d;
          Event_sim.Run v_max
        end
        else Event_sim.Run d.Event_sim.d_base_voltage
