module Runner = Lepts_sim.Runner
module Sampler = Lepts_sim.Sampler
module Event_sim = Lepts_sim.Event_sim
module Outcome = Lepts_sim.Outcome
module Static_schedule = Lepts_core.Static_schedule
module Model = Lepts_power.Model
module Rng = Lepts_prng.Xoshiro256
module Table = Lepts_util.Table
module Span = Lepts_obs.Span

type arm = {
  label : string;
  summary : Runner.summary;
  faults : Fault_injector.counters;
  containment : Containment.counters option;
}

type report = {
  clean : Runner.summary;
  faulty : arm;
  contained : arm;
  spec : Fault_injector.spec;
  rounds : int;
}

(* Checkpoint codecs: one entry per round per arm. The fault and
   containment counters are part of the entry — a resumed campaign must
   restore them exactly, not only the energy figures. *)
let encode_arm ~contained ((r : Runner.round_result), (fc : Fault_injector.counters), cc) =
  Checkpoint.round_result_fields r
  @ [ string_of_int fc.Fault_injector.overruns;
      string_of_int fc.Fault_injector.jitters;
      string_of_int fc.Fault_injector.denials ]
  @
  if not contained then []
  else
    match cc with
    | None -> failwith "Campaign: contained round without containment counters"
    | Some (c : Containment.counters) ->
      [ string_of_int c.Containment.escalated_dispatches;
        string_of_int c.Containment.escalated_instances;
        string_of_int c.Containment.shed_instances ]

let decode_arm ~contained fields =
  match (contained, fields) with
  | false, [ e; m; s; ov; ji; de ] ->
    ( Checkpoint.round_result_of_fields [ e; m; s ],
      { Fault_injector.overruns = int_of_string ov; jitters = int_of_string ji;
        denials = int_of_string de },
      None )
  | true, [ e; m; s; ov; ji; de; ed; ei; si ] ->
    ( Checkpoint.round_result_of_fields [ e; m; s ],
      { Fault_injector.overruns = int_of_string ov; jitters = int_of_string ji;
        denials = int_of_string de },
      Some
        { Containment.escalated_dispatches = int_of_string ed;
          escalated_instances = int_of_string ei;
          shed_instances = int_of_string si } )
  | _ ->
    failwith
      (Printf.sprintf "Campaign: arm entry has %d fields" (List.length fields))

let run ?(rounds = 500) ?(jobs = 1) ?on_stats ?dist
    ?(containment = Containment.default_config) ?checkpoint ?should_stop ~spec
    ~(schedule : Static_schedule.t) ~policy ~seed () =
  Fault_injector.validate spec;
  let plan = schedule.Static_schedule.plan in
  let power = schedule.Static_schedule.power in
  let base = Rng.create ~seed in
  let stats_for label = Option.map (fun f s -> f ~label s) on_stats in
  (* Each arm replays the identical workload draws (the per-round
     generator is [Runner.round_rng ~rng:base], exactly what the clean
     arm derives) and the identical fault scenarios (same injector spec
     and per-round seeds); only the runtime response differs. Every
     round gets its own fault/containment counters and containment
     hook, so rounds are independent — safe to run on any domain — and
     the totals are merged in round order. Rounds flow through
     {!Checkpoint.map_indices}: without a session that is one pool run,
     with one it reuses every round already on disk and persists new
     rounds chunk by chunk — the merged report is bit-identical either
     way, which is what makes kill-9-and-resume exact. *)
  (* Arms run on the caller's domain (only their rounds fan out), so a
     plain span per arm is enough for the campaign profile. *)
  let arm label ~section ~contained =
    Span.with_ ~name:("arm:" ^ label) @@ fun () ->
    let one_round r =
      let rng = Runner.round_rng ~rng:base ~round:r in
      let totals = Sampler.instance_totals ?dist plan ~rng in
      let fc = Fault_injector.fresh_counters () in
      let s = Fault_injector.perturb spec ~counters:fc ~round:r plan ~totals in
      let cc, control =
        if not contained then (None, None)
        else
          let c = Containment.fresh_counters () in
          (Some c, Some (Containment.control ~config:containment ~power ~counters:c ()))
      in
      let outcome =
        Event_sim.run ~faults:s.Fault_injector.faults ?control ~schedule ~policy
          ~totals:s.Fault_injector.totals ()
      in
      ( { Runner.energy = outcome.Outcome.energy;
          misses = outcome.Outcome.deadline_misses;
          shed = outcome.Outcome.shed_instances },
        fc, cc )
    in
    let results =
      Checkpoint.map_indices ?session:checkpoint ?should_stop
        ?on_stats:(stats_for label) ~section ~encode:(encode_arm ~contained)
        ~decode:(decode_arm ~contained) ~jobs ~n:rounds ~f:one_round ()
    in
    let fcounters = Fault_injector.fresh_counters () in
    let ccounters = Containment.fresh_counters () in
    Array.iter
      (fun (_, fc, cc) ->
        Fault_injector.add_counters ~into:fcounters fc;
        Option.iter (fun c -> Containment.add_counters ~into:ccounters c) cc)
      results;
    { label;
      summary = Runner.summarize (Array.map (fun (r, _, _) -> r) results);
      faults = fcounters;
      containment = (if contained then Some ccounters else None) }
  in
  let clean =
    Span.with_ ~name:"arm:fault-free" (fun () ->
        let one_round r =
          Runner.round ?dist ~schedule ~policy ~rng:base ~round:r ()
        in
        let results =
          Checkpoint.map_indices ?session:checkpoint ?should_stop
            ?on_stats:(stats_for "fault-free") ~section:"clean"
            ~encode:Checkpoint.round_result_fields
            ~decode:Checkpoint.round_result_of_fields ~jobs ~n:rounds
            ~f:one_round ()
        in
        let summary = Runner.summarize results in
        Runner.record_metrics summary;
        summary)
  in
  let faulty = arm "faults" ~section:"faults" ~contained:false in
  let contained = arm "faults + containment" ~section:"contained" ~contained:true in
  { clean; faulty; contained; spec; rounds }

let to_table r =
  let t =
    Table.create
      ~header:
        [ "run"; "misses"; "shed"; "escalated"; "overruns"; "jitters"; "denials";
          "mean"; "p95"; "p99" ]
  in
  let row label (s : Runner.summary) (f : Fault_injector.counters option)
      (c : Containment.counters option) =
    Table.add_row t
      [ label;
        string_of_int s.Runner.deadline_misses;
        string_of_int s.Runner.shed_instances;
        (match c with
        | None -> "-"
        | Some c -> string_of_int c.Containment.escalated_instances);
        (match f with
        | None -> "-"
        | Some f -> string_of_int f.Fault_injector.overruns);
        (match f with
        | None -> "-"
        | Some f -> string_of_int f.Fault_injector.jitters);
        (match f with
        | None -> "-"
        | Some f -> string_of_int f.Fault_injector.denials);
        Table.float_cell s.Runner.mean_energy;
        Table.float_cell s.Runner.p95_energy;
        Table.float_cell s.Runner.p99_energy ]
  in
  row "fault-free" r.clean None None;
  row r.faulty.label r.faulty.summary (Some r.faulty.faults) None;
  row r.contained.label r.contained.summary (Some r.contained.faults)
    r.contained.containment;
  t
