module Runner = Lepts_sim.Runner
module Static_schedule = Lepts_core.Static_schedule
module Model = Lepts_power.Model
module Rng = Lepts_prng.Xoshiro256
module Table = Lepts_util.Table

type arm = {
  label : string;
  summary : Runner.summary;
  faults : Fault_injector.counters;
  containment : Containment.counters option;
}

type report = {
  clean : Runner.summary;
  faulty : arm;
  contained : arm;
  spec : Fault_injector.spec;
  rounds : int;
}

let run ?(rounds = 500) ?dist ?(containment = Containment.default_config) ~spec
    ~(schedule : Static_schedule.t) ~policy ~seed () =
  Fault_injector.validate spec;
  let plan = schedule.Static_schedule.plan in
  let power = schedule.Static_schedule.power in
  (* Each arm replays the identical workload draws (same simulation
     seed) and the identical fault scenarios (same injector spec and
     per-round seeds); only the runtime response differs. *)
  let arm label ~contained =
    let fcounters = Fault_injector.fresh_counters () in
    let round_now = ref 0 in
    let scenario ~round ~totals =
      round_now := round;
      let s =
        Fault_injector.perturb spec ~counters:fcounters ~round plan ~totals
      in
      (s.Fault_injector.totals, Some s.Fault_injector.faults)
    in
    let ccounters, control =
      if not contained then (None, None)
      else
        let c = Containment.fresh_counters () in
        ( Some c,
          Some
            (Containment.control ~config:containment
               ~epoch:(fun () -> !round_now)
               ~power ~counters:c ()) )
    in
    let summary =
      Runner.simulate ~rounds ?dist ~scenario ?control ~schedule ~policy
        ~rng:(Rng.create ~seed) ()
    in
    { label; summary; faults = fcounters; containment = ccounters }
  in
  let clean =
    Runner.simulate ~rounds ?dist ~schedule ~policy ~rng:(Rng.create ~seed) ()
  in
  let faulty = arm "faults" ~contained:false in
  let contained = arm "faults + containment" ~contained:true in
  { clean; faulty; contained; spec; rounds }

let to_table r =
  let t =
    Table.create
      ~header:
        [ "run"; "misses"; "shed"; "escalated"; "overruns"; "jitters"; "denials";
          "mean"; "p95"; "p99" ]
  in
  let row label (s : Runner.summary) (f : Fault_injector.counters option)
      (c : Containment.counters option) =
    Table.add_row t
      [ label;
        string_of_int s.Runner.deadline_misses;
        string_of_int s.Runner.shed_instances;
        (match c with
        | None -> "-"
        | Some c -> string_of_int c.Containment.escalated_instances);
        (match f with
        | None -> "-"
        | Some f -> string_of_int f.Fault_injector.overruns);
        (match f with
        | None -> "-"
        | Some f -> string_of_int f.Fault_injector.jitters);
        (match f with
        | None -> "-"
        | Some f -> string_of_int f.Fault_injector.denials);
        Table.float_cell s.Runner.mean_energy;
        Table.float_cell s.Runner.p95_energy;
        Table.float_cell s.Runner.p99_energy ]
  in
  row "fault-free" r.clean None None;
  row r.faulty.label r.faulty.summary (Some r.faulty.faults) None;
  row r.contained.label r.contained.summary (Some r.contained.faults)
    r.contained.containment;
  t
