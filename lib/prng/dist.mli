(** Random variates used by the workload generators.

    The paper draws actual execution cycles from a normal distribution
    with mean ACEC, truncated to the interval [[BCEC, WCEC]]. *)

val normal : Xoshiro256.t -> mu:float -> sigma:float -> float
(** One draw from N(mu, sigma^2) via the Box–Muller transform.
    [sigma] must be non-negative; [sigma = 0.] returns [mu]. *)

val truncated_normal :
  Xoshiro256.t -> mu:float -> sigma:float -> lo:float -> hi:float -> float
(** Draw from N(mu, sigma^2) conditioned on the interval [[lo, hi]].
    Requires [lo <= hi]. When [sigma = 0.] the result is [mu] clamped
    to the interval. Uses rejection while the interval carries mass
    (exact), and after 64 rejected draws switches to the inverse-CDF
    transform [Phi^-1(Phi(a) + u (Phi(b) - Phi(a)))], which remains
    unbiased for intervals far in a tail — the historical fallback
    clamped to [lo]/[hi], creating point masses at the bounds that
    biased the mean workload. *)

val normal_cdf : float -> float
(** Standard normal CDF, via a rational [erfc] fit with relative error
    below 1.2e-7 (tails included). *)

val normal_icdf : float -> float
(** Standard normal quantile (Acklam's approximation, relative error
    below 1.15e-9). Requires [p] in the open interval (0, 1); raises
    [Invalid_argument] otherwise. *)

val uniform_choice : Xoshiro256.t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)
