(** xoshiro256** pseudo-random generator (Blackman & Vigna 2018).

    All simulation randomness in this library flows through this module
    so that every experiment is reproducible from a single integer
    seed. *)

type t

val create : seed:int -> t
(** [create ~seed] expands [seed] through SplitMix64 into the 256-bit
    state, as recommended by the authors. *)

val split : t -> t
(** [split t] derives an independent generator from [t]'s stream,
    advancing [t]. Useful for giving each task-set replication its own
    stream. *)

val split_key : t -> key:int -> t
(** [split_key t ~key] derives the [key]-th child stream of [t]'s
    {e current} state without advancing [t]: the child is a pure
    function of (state, key), so children may be derived in any order —
    or concurrently from several domains — and are identical to the
    ones a sequential traversal would produce. Distinct keys give
    decorrelated streams (state and key are mixed through a SplitMix64
    chain). This is the primitive behind the per-round and per-instance
    stream discipline of {!Lepts_sim.Runner} and
    {!Lepts_sim.Sampler}. *)

val copy : t -> t
(** Snapshot of the current state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** [float t] is uniform in [[0, 1)] with 53 bits of precision. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [[lo, hi)]. Requires [lo <= hi]. *)

val int : t -> bound:int -> int
(** Uniform integer in [[0, bound)]. Requires [bound > 0]. Uses
    rejection sampling, so the distribution is exactly uniform. *)

val bool : t -> bool
(** Fair coin flip. *)
