let normal rng ~mu ~sigma =
  if sigma < 0. then invalid_arg "Dist.normal: negative sigma";
  if sigma = 0. then mu
  else
    (* Box–Muller; u1 is kept away from 0 so that log is finite. *)
    let u1 = Float.max (Xoshiro256.float rng) 0x1.0p-60 in
    let u2 = Xoshiro256.float rng in
    let r = sqrt (-2. *. log u1) in
    mu +. (sigma *. r *. cos (2. *. Float.pi *. u2))

(* Complementary error function, rational Chebyshev fit (Numerical
   Recipes `erfcc`): fractional error below 1.2e-7 everywhere, which
   keeps the *relative* accuracy of the normal CDF in the far tails. *)
let erfc x =
  let z = Float.abs x in
  let t = 1. /. (1. +. (0.5 *. z)) in
  let poly =
    -1.26551223
    +. t
       *. (1.00002368
          +. t
             *. (0.37409196
                +. t
                   *. (0.09678418
                      +. t
                         *. (-0.18628806
                            +. t
                               *. (0.27886807
                                  +. t
                                     *. (-1.13520398
                                        +. t
                                           *. (1.48851587
                                              +. t *. (-0.82215223 +. (t *. 0.17087277)))))))))
  in
  let ans = t *. exp ((-.z *. z) +. poly) in
  if x >= 0. then ans else 2. -. ans

let normal_cdf x = 0.5 *. erfc (-.x /. sqrt 2.)

(* Acklam's rational approximation of the standard-normal quantile:
   relative error below 1.15e-9 over the whole open unit interval. *)
let normal_icdf p =
  if not (p > 0. && p < 1.) then invalid_arg "Dist.normal_icdf: p must be in (0, 1)";
  let a0 = -3.969683028665376e+01 and a1 = 2.209460984245205e+02 in
  let a2 = -2.759285104469687e+02 and a3 = 1.383577518672690e+02 in
  let a4 = -3.066479806614716e+01 and a5 = 2.506628277459239e+00 in
  let b0 = -5.447609879822406e+01 and b1 = 1.615858368580409e+02 in
  let b2 = -1.556989798598866e+02 and b3 = 6.680131188771972e+01 in
  let b4 = -1.328068155288572e+01 in
  let c0 = -7.784894002430293e-03 and c1 = -3.223964580411365e-01 in
  let c2 = -2.400758277161838e+00 and c3 = -2.549732539343734e+00 in
  let c4 = 4.374664141464968e+00 and c5 = 2.938163982698783e+00 in
  let d0 = 7.784695709041462e-03 and d1 = 3.224671290700398e-01 in
  let d2 = 2.445134137142996e+00 and d3 = 3.754408661907416e+00 in
  let p_low = 0.02425 in
  let tail q =
    ((((((c0 *. q) +. c1) *. q +. c2) *. q +. c3) *. q +. c4) *. q +. c5)
    /. (((((d0 *. q) +. d1) *. q +. d2) *. q +. d3) *. q +. 1.)
  in
  if p < p_low then tail (sqrt (-2. *. log p))
  else if p <= 1. -. p_low then
    let q = p -. 0.5 in
    let r = q *. q in
    ((((((a0 *. r) +. a1) *. r +. a2) *. r +. a3) *. r +. a4) *. r +. a5)
    *. q
    /. ((((((b0 *. r) +. b1) *. r +. b2) *. r +. b3) *. r +. b4) *. r +. 1.)
  else -.tail (sqrt (-2. *. log (1. -. p)))

(* Exact (up to the cdf/quantile approximations) inverse-CDF draw from
   the truncated standard normal: u uniform on [0,1) maps to
   Phi^-1(Phi(a) + u (Phi(b) - Phi(a))). Computed in the lower tail —
   where the CDF retains relative precision — mirroring the interval
   when it lies entirely above the mean. *)
let rec truncated_icdf_std ~a ~b u =
  if a > 0. then -.truncated_icdf_std ~a:(-.b) ~b:(-.a) (1. -. u)
  else
    let fa = normal_cdf a and fb = normal_cdf b in
    let p = fa +. (u *. (fb -. fa)) in
    if p <= 0. then a else if p >= 1. then b else normal_icdf p

let truncated_normal rng ~mu ~sigma ~lo ~hi =
  if lo > hi then invalid_arg "Dist.truncated_normal: lo > hi";
  if sigma = 0. then Lepts_util.Num_ext.clamp ~lo ~hi mu
  else
    (* Rejection is exact and cheap when the interval carries mass;
       once it has failed often enough that the interval is clearly far
       in a tail, switch to the inverse-CDF draw, which is unbiased
       there too (the old clamping fallback piled a point mass onto
       [lo]/[hi] and shifted the mean). *)
    let rec draw attempts =
      if attempts = 0 then
        let a = (lo -. mu) /. sigma and b = (hi -. mu) /. sigma in
        let z = truncated_icdf_std ~a ~b (Xoshiro256.float rng) in
        Lepts_util.Num_ext.clamp ~lo ~hi (mu +. (sigma *. z))
      else
        let x = normal rng ~mu ~sigma in
        if x >= lo && x <= hi then x else draw (attempts - 1)
    in
    draw 64

let uniform_choice rng xs =
  if Array.length xs = 0 then invalid_arg "Dist.uniform_choice: empty array";
  xs.(Xoshiro256.int rng ~bound:(Array.length xs))
