type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let create ~seed =
  let sm = Splitmix64.create (Int64.of_int seed) in
  let s0 = Splitmix64.next sm in
  let s1 = Splitmix64.next sm in
  let s2 = Splitmix64.next sm in
  let s3 = Splitmix64.next sm in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next_int64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  (* Seed a fresh SplitMix64 from this stream, then expand as in
     [create]; keeps the parent and child streams decorrelated. *)
  let sm = Splitmix64.create (next_int64 t) in
  let s0 = Splitmix64.next sm in
  let s1 = Splitmix64.next sm in
  let s2 = Splitmix64.next sm in
  let s3 = Splitmix64.next sm in
  { s0; s1; s2; s3 }

let split_key t ~key =
  (* Absorb the full 256-bit state and the counter through a SplitMix64
     chain, then expand as in [create]. [t] is never advanced, so the
     child is a pure function of (state, key): deriving children in any
     traversal order — or from concurrent domains — yields identical
     streams. *)
  let absorb h x = Splitmix64.next (Splitmix64.create (Int64.logxor h x)) in
  let h = Int64.of_int key in
  let h = absorb h t.s0 in
  let h = absorb h t.s1 in
  let h = absorb h t.s2 in
  let h = absorb h t.s3 in
  let sm = Splitmix64.create h in
  let s0 = Splitmix64.next sm in
  let s1 = Splitmix64.next sm in
  let s2 = Splitmix64.next sm in
  let s3 = Splitmix64.next sm in
  { s0; s1; s2; s3 }

let float t =
  (* Top 53 bits scaled by 2^-53: uniform on [0, 1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let uniform t ~lo ~hi =
  assert (lo <= hi);
  lo +. ((hi -. lo) *. float t)

let int t ~bound =
  if bound <= 0 then invalid_arg "Xoshiro256.int: bound must be positive";
  (* Rejection sampling over the smallest covering power-of-two mask. *)
  let rec mask_for m = if m >= bound - 1 then m else mask_for ((m * 2) + 1) in
  let mask = mask_for 1 in
  let rec draw () =
    let v = Int64.to_int (Int64.logand (next_int64 t) (Int64.of_int mask)) in
    if v < bound then v else draw ()
  in
  draw ()

let bool t = Int64.compare (Int64.logand (next_int64 t) 1L) 0L <> 0
